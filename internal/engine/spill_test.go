package engine

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/discovery"
	"semandaq/internal/relation"
)

// countSegFiles returns how many segment files live under dir (recursive).
func countSegFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".seg") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestEngineSpillLifecycle walks the full engine-level tier: Register
// under a SpillDir creates a per-dataset directory, a tiny index budget
// turns evictions into segment-file demotions, pages-ins revive them
// without rebuilds, SpillColumns demotes the base columns too, and Drop
// removes the dataset's directory wholesale.
func TestEngineSpillLifecycle(t *testing.T) {
	if !relation.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	root := t.TempDir()
	e := New(Options{Workers: 1, SpillDir: root, IndexBudgetBytes: 1})
	s, err := e.Register("spill-ds", datagen.Cust(2_000, 7))
	if err != nil {
		t.Fatal(err)
	}
	dsDir := s.SpillDir()
	if dsDir == "" || !strings.HasPrefix(dsDir, root) {
		t.Fatalf("session spill dir %q not under %q", dsDir, root)
	}
	if _, err := os.Stat(dsDir); err != nil {
		t.Fatalf("spill dir not created: %v", err)
	}

	if err := s.SetConstraints(datagen.CustConstraints()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Detect(); err != nil {
		t.Fatal(err)
	}
	// Budget 1 byte: every partition built during Detect is demoted as
	// soon as the next one lands, so segment files must exist now.
	st := s.IndexStats()
	if st.Spills == 0 {
		t.Fatalf("no demotions under 1-byte budget: %+v", st)
	}
	if countSegFiles(t, dsDir) == 0 {
		t.Fatal("demotions produced no segment files")
	}

	// A second Detect must page demoted partitions back in, not rebuild.
	if _, err := s.Detect(); err != nil {
		t.Fatal(err)
	}
	st2 := s.IndexStats()
	if st2.Misses != st.Misses {
		t.Fatalf("warm detect rebuilt: misses %d -> %d", st.Misses, st2.Misses)
	}
	if st2.Pageins == 0 {
		t.Fatalf("warm detect paged nothing in: %+v", st2)
	}

	freed, err := s.SpillColumns()
	if err != nil {
		t.Fatal(err)
	}
	if freed <= 0 {
		t.Fatalf("SpillColumns freed %d bytes", freed)
	}
	// Detection over mapped columns must still agree with a cold pass.
	got, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	want, err := cfd.NewDetector(s.Constraints()).Detect(s.Data())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("detect over spilled columns diverges: %d vs %d violations", len(got), len(want))
	}

	if !e.Drop("spill-ds") {
		t.Fatal("Drop returned false")
	}
	if _, err := os.Stat(dsDir); !os.IsNotExist(err) {
		t.Fatalf("spill dir survives Drop: %v", err)
	}
}

// TestConcurrentSpillDemoteDirtyAppend races budget-driven demotions
// and page-ins against dirty appends whose repairs journal CellPatch
// records into cached partitions, while readers hammer Detect /
// Violations / Discover (Get, GetVia and GetDelta paths). Run under
// -race via `make race-cache`. The hazard under test: a partition is
// demoted to its segment file while its column still has pending
// patches, then paged back in and caught up concurrently with readers.
func TestConcurrentSpillDemoteDirtyAppend(t *testing.T) {
	if !relation.MmapSupported() {
		t.Skip("no mmap on this platform")
	}
	base := datagen.Cust(2_000, 89)
	s, err := NewSession("spill-conc", base, chainedCustConstraints(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	store, err := relation.NewSpillStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetSpill(store)
	// Small enough that the working set (chained constraints plus the
	// discovery lattice) cannot stay resident, so demotions and page-ins
	// interleave with the append/patch traffic.
	s.SetIndexBudget(64 << 10)
	if _, err := s.Detect(); err != nil {
		t.Fatal(err)
	}

	const rounds = 6
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := s.Append(corruptCT(base, w*rounds+i, 20)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := s.Detect(); err != nil {
					errCh <- err
					return
				}
				if _, err := s.Violations(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/2; i++ {
			if _, err := s.Discover(discovery.Options{MinSupport: 10, MaxLHS: 2}, false); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if s.Len() != base.Len()+2*rounds*20 {
		t.Fatalf("session length = %d after concurrent appends", s.Len())
	}
	got, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	want, err := cfd.NewDetector(s.Constraints()).Detect(s.Data())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental state diverges from cold detect: %d vs %d violations", len(got), len(want))
	}
	st := s.IndexStats()
	if st.Spills == 0 {
		t.Fatalf("workload never demoted an entry: %+v", st)
	}
	if st.Pageins == 0 {
		t.Fatalf("workload never paged an entry back in: %+v", st)
	}
}
