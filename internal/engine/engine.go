package engine

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"semandaq/internal/cfd"
	"semandaq/internal/dc"
	"semandaq/internal/relation"
)

// Sentinel errors the HTTP layer maps to status codes (errors.Is).
var (
	// ErrDuplicate reports a Register against an existing name.
	ErrDuplicate = errors.New("dataset already registered")
	// ErrUnknownDataset reports an operation naming no registered dataset.
	ErrUnknownDataset = errors.New("unknown dataset")
)

// maxCachedSets bounds the compiled-constraint cache; on overflow the
// cache is reset wholesale (sessions keep their installed sets — only
// future compilations lose sharing), which keeps a long-running daemon
// fed distinct constraint texts from growing without bound.
const maxCachedSets = 256

// Options configures an Engine.
type Options struct {
	// Workers is the detection worker-pool size handed to every
	// session: 0 means runtime.NumCPU(), 1 forces serial detection.
	Workers int
	// Shards is the PLI build fan-out handed to every session's index
	// cache: cold partition builds and refinements split their
	// counting-sort passes across this many TID-range shards
	// (byte-identical output; see relation.BuildPLISharded). 0 means
	// runtime.GOMAXPROCS(0), 1 forces serial builds.
	Shards int
	// IndexBudgetBytes caps every session's PLI cache at this resident
	// byte estimate (0 = unlimited). Discovery lattices otherwise pin
	// C(arity, MaxLHS+1) partitions per dataset for the session's
	// lifetime; see relation.IndexCache.SetBudget for the eviction
	// policy.
	IndexBudgetBytes int64
	// SpillDir, when non-empty, turns budget evictions into tiered
	// demotions: every registered dataset gets a private subdirectory
	// where clean evicted PLIs are written as segment files and paged
	// back in via read-only mmap instead of rebuilt (see
	// relation.IndexCache.SetSpill). Removed with the dataset on Drop.
	// Empty (the default) keeps the pre-tiered behavior: evictions
	// discard.
	SpillDir string
}

// Engine is the dataset registry: named sessions behind an RWMutex so
// lookups from concurrent requests never contend with each other, plus
// a cache of compiled constraint sets so re-installing the same
// constraint text (e.g. every dataset of a fleet sharing one rule file)
// reuses the parsed cfd.Set instead of recompiling per dataset.
type Engine struct {
	mu          sync.RWMutex
	sessions    map[string]*Session
	reserved    map[string]bool // names mid-registration (journal write in flight)
	setCache    map[string]*cfd.Set
	dcCache     map[string]*dc.Set
	workers     int
	shards      int
	indexBudget int64
	spillDir    string

	// journal, when attached (SetJournal), makes every mutation durable
	// before it is acked; nil runs the engine in the historical
	// memory-only mode. See durable.go.
	journal Journal
}

// New creates an empty engine.
func New(opts Options) *Engine {
	return &Engine{
		sessions:    map[string]*Session{},
		reserved:    map[string]bool{},
		setCache:    map[string]*cfd.Set{},
		dcCache:     map[string]*dc.Set{},
		workers:     opts.Workers,
		shards:      opts.Shards,
		indexBudget: opts.IndexBudgetBytes,
		spillDir:    opts.SpillDir,
	}
}

// Register opens a new session named name over a private clone of data,
// with an empty constraint set. Names are unique; registering an
// existing name fails (Drop it first).
func (e *Engine) Register(name string, data *relation.Relation) (*Session, error) {
	if name == "" {
		return nil, fmt.Errorf("engine: dataset name must be non-empty")
	}
	s, err := NewSession(name, data, nil, e.workers)
	if err != nil {
		return nil, err
	}
	s.SetShards(e.shards)
	if e.indexBudget > 0 {
		s.SetIndexBudget(e.indexBudget)
	}
	if e.spillDir != "" {
		// Each dataset gets a private directory so Drop can remove its
		// segment files wholesale; MkdirTemp keeps re-registrations of a
		// reused name from colliding with files still mapped by in-flight
		// requests on the dropped session.
		if err := os.MkdirAll(e.spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("engine: spill dir: %w", err)
		}
		dir, err := os.MkdirTemp(e.spillDir, "ds-")
		if err != nil {
			return nil, fmt.Errorf("engine: spill dir: %w", err)
		}
		store, err := relation.NewSpillStore(dir)
		if err != nil {
			return nil, fmt.Errorf("engine: spill dir: %w", err)
		}
		s.SetSpill(store)
	}
	// Reserve the name, journal the registration, then publish. The
	// journal write happens BEFORE the session is reachable, so no other
	// record for this dataset can precede its register record in the
	// log, and it happens outside e.mu so a slow fsync never blocks
	// lookups of other datasets.
	e.mu.Lock()
	if _, dup := e.sessions[name]; dup || e.reserved[name] {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: dataset %q: %w", name, ErrDuplicate)
	}
	e.reserved[name] = true
	journal := e.journal
	e.mu.Unlock()
	if journal != nil {
		if err := journal.LogRegister(name, s.data.Schema(), s.data.Tuples()); err != nil {
			e.mu.Lock()
			delete(e.reserved, name)
			e.mu.Unlock()
			return nil, fmt.Errorf("engine: journaling register of %q: %w", name, err)
		}
	}
	s.journal = journal
	e.mu.Lock()
	delete(e.reserved, name)
	e.sessions[name] = s
	e.mu.Unlock()
	return s, nil
}

// Get returns the named session.
func (e *Engine) Get(name string) (*Session, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s, ok := e.sessions[name]
	return s, ok
}

// Drop removes the named session from the registry and reports whether
// it existed. In-flight requests holding the session finish normally —
// the session's spill directory is unlinked here, which on Linux leaves
// already-mapped segment files readable until their last reference
// drops (a straggler page-in of an unlinked file just falls back to a
// rebuild).
func (e *Engine) Drop(name string) bool {
	e.mu.RLock()
	journal := e.journal
	s, exists := e.sessions[name]
	e.mu.RUnlock()
	if !exists {
		return false
	}
	// Journal under the session's write lock — the same exclusion every
	// other mutation journals under — so no append/edit/constraint record
	// for this dataset can land after its drop record in the WAL (replay
	// applies records in log order and would hit an unknown dataset). The
	// dropped flag makes stale handles acquired before the drop refuse
	// further mutations instead of journaling them post-drop.
	s.mu.Lock()
	if s.dropped {
		s.mu.Unlock()
		return false
	}
	if journal != nil {
		// Journal-first: a drop that isn't durable must not be acked, or
		// recovery would resurrect the dataset. A journal failure leaves
		// the dataset in place and reports "not dropped".
		if err := journal.LogDrop(name); err != nil {
			s.mu.Unlock()
			return false
		}
	}
	s.dropped = true
	s.mu.Unlock()
	e.mu.Lock()
	// Only unpublish OUR session: a not-dropped session can't have been
	// replaced (names are freed only by Drop), but guard anyway.
	if cur, ok := e.sessions[name]; ok && cur == s {
		delete(e.sessions, name)
	}
	e.mu.Unlock()
	if dir := s.SpillDir(); dir != "" {
		os.RemoveAll(dir)
	}
	return true
}

// List returns the registered dataset names, sorted.
func (e *Engine) List() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.sessions))
	for name := range e.sessions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CompileConstraints parses constraint text against a schema, caching
// the compiled set keyed by (schema, text). Compiled sets are shared
// across sessions and must therefore never be mutated after
// installation — SetConstraints swaps whole sets, preserving that.
func (e *Engine) CompileConstraints(schema *relation.Schema, text string) (*cfd.Set, error) {
	key := schema.String() + "\x00" + text
	e.mu.RLock()
	set, ok := e.setCache[key]
	e.mu.RUnlock()
	if ok {
		return set, nil
	}
	set, err := cfd.ParseSet(text, schema)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	// Another request may have compiled the same text while we parsed;
	// keep the first so every session shares one instance.
	if prior, dup := e.setCache[key]; dup {
		set = prior
	} else {
		if len(e.setCache) >= maxCachedSets {
			e.setCache = make(map[string]*cfd.Set, maxCachedSets)
		}
		e.setCache[key] = set
	}
	e.mu.Unlock()
	return set, nil
}

// InstallConstraints compiles text and installs the set on the named
// dataset in one step — the service path for POST /v1/constraints.
func (e *Engine) InstallConstraints(dataset, text string) (*cfd.Set, error) {
	s, ok := e.Get(dataset)
	if !ok {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownDataset, dataset)
	}
	set, err := e.CompileConstraints(s.Schema(), text)
	if err != nil {
		return nil, err
	}
	if err := s.SetConstraints(set); err != nil {
		return nil, err
	}
	return set, nil
}
