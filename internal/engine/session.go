// Package engine is the long-running core of the Semandaq service: a
// registry of named datasets with compiled constraint sets, each wrapped
// in a concurrency-safe Session that serves detect → repair → discover
// to many callers at once. It is the persistent-system counterpart of
// the one-shot pipeline in cmd/semandaq — HoloClean-style engines earn
// interactive use by keeping data loaded and constraints compiled across
// requests, which is exactly what the Engine's registry and the
// Session's cached state provide. internal/server exposes it over
// HTTP/JSON; the semandaq facade's Project is a thin single-user wrapper
// around Session.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"semandaq/internal/cfd"
	"semandaq/internal/dc"
	"semandaq/internal/discovery"
	"semandaq/internal/relation"
	"semandaq/internal/repair"
	"semandaq/internal/wal"
)

// ConfirmedWeight is the cell weight assigned to user-confirmed values;
// it makes the repair engine treat them as (almost) immutable relative
// to default-weight cells.
const ConfirmedWeight = 1e6

// Session is one loaded dataset with its compiled constraints and
// interaction state: cell confidences, the latest candidate repair, and
// the cached violation list. All methods are safe for concurrent use;
// reads (Detect, Violations, Summary, snapshots) share an RLock so any
// number of detection requests proceed in parallel, while mutations
// (Edit, Accept, Append, SetConstraints) serialize behind the write
// lock and bump an internal version that invalidates stale caches.
type Session struct {
	mu      sync.RWMutex
	name    string
	data    *relation.Relation
	set     *cfd.Set
	dcs     *dc.Set
	workers int

	// indexes caches the X-partition PLIs of the session's dataset keyed
	// by attribute set, shared by detection AND discovery (Discover
	// threads it through the lattice walk). Entries self-validate
	// against the relation's per-column versions, so repeated detection
	// or discovery rebuilds nothing and a cell edit invalidates only the
	// indexes over the touched column.
	indexes *relation.IndexCache

	// spill, when set, is the session's tiered-storage home: the index
	// cache demotes budget-evicted PLIs into it (SetSpill) and
	// SpillColumns demotes the dataset's code columns. Owned by the
	// engine, which removes the directory when the dataset is dropped.
	spill *relation.SpillStore

	confirmed map[[2]int]bool
	candidate *repair.Result

	// journal, when non-nil, receives every mutation before it is acked
	// (see durable.go). Set by the engine at registration / SetJournal;
	// read and written under mu.
	journal Journal

	// dropped marks a session removed from the registry (Engine.Drop).
	// Set under mu BEFORE the drop is acked, it makes stale handles
	// acquired before the drop refuse further mutations: once the drop
	// record is in the WAL, no later record for this dataset may follow
	// it, or replay would apply it to an unknown dataset.
	dropped bool

	// version counts mutations of data/set; caches tagged with an older
	// version are discarded instead of stored.
	version    uint64
	violations []cfd.Violation
	vioValid   bool
}

// NewSession opens a session over a private clone of data. The
// constraint set must match the data's schema and be satisfiable (an
// unsatisfiable set cannot be repaired to). workers configures parallel
// detection: 0 means runtime.NumCPU(), 1 forces serial. The PLI build
// fan-out of the session's index cache mirrors the pool (0 = NumCPU,
// 1 = serial); SetShards overrides it independently.
func NewSession(name string, data *relation.Relation, set *cfd.Set, workers int) (*Session, error) {
	if set == nil {
		set = cfd.NewSet(data.Schema())
	}
	if err := checkConstraints(data.Schema(), set); err != nil {
		return nil, err
	}
	s := &Session{
		name:      name,
		data:      data.Clone(),
		set:       set,
		dcs:       dc.NewSet(data.Schema()),
		workers:   workers,
		indexes:   relation.NewIndexCache(),
		confirmed: map[[2]int]bool{},
	}
	s.indexes.SetShards(workers)
	return s, nil
}

func checkConstraints(schema *relation.Schema, set *cfd.Set) error {
	if !schema.Equal(set.Schema()) {
		return fmt.Errorf("engine: data schema %s does not match constraint schema %s",
			schema.Name(), set.Schema().Name())
	}
	if set.Len() > 0 {
		if ok, _ := cfd.Satisfiable(set); !ok {
			return fmt.Errorf("engine: the CFD set is unsatisfiable; no repair can exist")
		}
	}
	return nil
}

// Name returns the session name.
func (s *Session) Name() string { return s.name }

// Schema returns the dataset schema (immutable; mutations never change
// it, but the underlying relation pointer is swapped by Accept/Append,
// hence the lock).
func (s *Session) Schema() *relation.Schema {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data.Schema()
}

// Len returns the current number of tuples.
func (s *Session) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data.Len()
}

// Data returns the current working relation. The relation aliases
// session storage: treat it as read-only and use Edit/Append/Accept for
// changes, and do not hold it across mutations when other goroutines
// share the session (use Snapshot for an isolated copy).
func (s *Session) Data() *relation.Relation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data
}

// Snapshot returns a deep copy of the current working relation.
func (s *Session) Snapshot() *relation.Relation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data.Clone()
}

// Constraints returns the session's current CFD set. Sets are treated
// as immutable once installed; SetConstraints swaps the whole set.
func (s *Session) Constraints() *cfd.Set {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.set
}

// SetConstraints replaces the constraint set (schema-checked and
// satisfiability-checked) and invalidates cached state.
func (s *Session) SetConstraints(set *cfd.Set) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOpen(); err != nil {
		return err
	}
	if err := checkConstraints(s.data.Schema(), set); err != nil {
		return err
	}
	if s.journal != nil {
		// Canonical text, not the user's: replay recompiles through the
		// same parser, and canonical text round-trips for every set
		// (including discovery-installed ones that never had user text).
		if err := s.journal.LogConstraints(s.name, set.String()); err != nil {
			return fmt.Errorf("engine: journaling constraints: %w", err)
		}
	}
	s.set = set
	s.mutated()
	return nil
}

// checkOpen must be called with the write lock held before mutating
// (and in particular before journaling): a dropped session's WAL
// history ends at its drop record, so admitting a late mutation through
// a stale handle would journal a record replay cannot apply.
func (s *Session) checkOpen() error {
	if s.dropped {
		return fmt.Errorf("engine: %w: %q", ErrUnknownDataset, s.name)
	}
	return nil
}

// mutated must be called with the write lock held after any change to
// data or constraints.
func (s *Session) mutated() {
	s.version++
	s.violations = nil
	s.vioValid = false
	s.candidate = nil
}

// Detect runs violation detection on the current data using the
// session's worker pool and refreshes the violation cache. The returned
// slice is owned by the caller.
func (s *Session) Detect() ([]cfd.Violation, error) {
	// Holding the read lock across the computation is what makes
	// concurrent detection safe against in-place cell edits; other
	// readers still proceed in parallel.
	s.mu.RLock()
	ver := s.version
	vs, err := cfd.NewDetectorWithCache(s.set, s.indexes).DetectParallel(s.data, s.workers)
	s.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.version == ver {
		// Cache a copy: the returned slice is caller-owned, and a
		// caller sorting or rewriting it must not corrupt what
		// Violations serves to everyone else.
		s.violations = append([]cfd.Violation(nil), vs...)
		s.vioValid = true
	}
	s.mu.Unlock()
	return vs, nil
}

// DetectSerial runs single-threaded detection, bypassing the worker
// pool and the cache. It exists so callers can cross-check the parallel
// path (the results are identical by construction; tests assert it).
func (s *Session) DetectSerial() ([]cfd.Violation, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return cfd.NewDetectorWithCache(s.set, s.indexes).Detect(s.data)
}

// IndexStats returns the counters of the session's PLI cache, which
// backs both detection and discovery. Misses count full index builds,
// Refines count partition intersections, and Advances count cached
// partitions extended in place by appended rows: a warm steady state
// (repeated detection/discovery without mutations) shows Hits growing
// while Misses and Refines stay constant, and an append-heavy steady
// state additionally grows Advances — still with zero rebuilds.
func (s *Session) IndexStats() relation.CacheStats {
	return s.indexes.Stats()
}

// SetIndexBudget caps the session's PLI cache at the given resident
// byte estimate (0 = unlimited); see relation.IndexCache.SetBudget.
// Deep discovery-lattice partitions are evicted before the shallow
// detection partitions the service reuses on every request.
func (s *Session) SetIndexBudget(bytes int64) { s.indexes.SetBudget(bytes) }

// SetShards sets the PLI build fan-out of the session's index cache:
// cold partition builds and refinements run as TID-range-parallel
// counting sorts across this many shards, byte-identical to serial
// (relation.IndexCache.SetShards). 0 means runtime.GOMAXPROCS(0), 1
// forces serial builds.
func (s *Session) SetShards(n int) { s.indexes.SetShards(n) }

// SetSpill attaches a spill store to the session: budget evictions of
// clean cached PLIs demote to segment files in it and page back in via
// read-only mmap instead of rebuilding (relation.IndexCache.SetSpill),
// and SpillColumns demotes the dataset's code columns there. Attach
// right after NewSession, before the session serves traffic.
func (s *Session) SetSpill(store *relation.SpillStore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spill = store
	s.indexes.SetSpill(store)
}

// SpillDir returns the session's spill directory ("" when spilling is
// not configured). The engine removes it on Drop.
func (s *Session) SpillDir() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.spill == nil {
		return ""
	}
	return s.spill.Dir()
}

// SpillColumns demotes the dataset's int32 code columns to mapped
// segment files, freeing their heap copies; reads are untouched and the
// next Edit/Append transparently re-materializes the written column
// (relation.Relation.SpillColumns). Returns the heap bytes released.
func (s *Session) SpillColumns() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spill == nil {
		return 0, fmt.Errorf("engine: session %q has no spill store configured", s.name)
	}
	return s.data.SpillColumns(s.spill)
}

// IndexResidentBytes returns the heap bytes currently pinned by the
// session's PLI cache — what the index budget caps; paged-in mapped
// entries contribute (almost) nothing.
func (s *Session) IndexResidentBytes() int64 { return s.indexes.ResidentBytes() }

// Violations returns the cached violation list, recomputing it if the
// data or constraints changed since the last Detect.
func (s *Session) Violations() ([]cfd.Violation, error) {
	s.mu.RLock()
	if s.vioValid {
		out := append([]cfd.Violation(nil), s.violations...)
		s.mu.RUnlock()
		return out, nil
	}
	s.mu.RUnlock()
	return s.Detect()
}

// weights builds the repair weight function: confirmed cells are
// near-immutable, everything else has unit weight. Caller must hold a
// lock; the returned closure reads confirmed without locking and is
// only passed to repair runs that hold the write lock.
func (s *Session) weights() repair.WeightFn {
	return func(tid, attr int) float64 {
		if s.confirmed[[2]int{tid, attr}] {
			return ConfirmedWeight
		}
		return 1
	}
}

// Repair computes (and caches) a candidate repair of the current data;
// it does NOT modify the data — inspect the result and call Accept, or
// edit cells and re-run. Repair holds the write lock for the duration
// of the computation, so it serializes with other mutations (detection
// requests queue behind it; the candidate is always computed against a
// stable snapshot).
func (s *Session) Repair() (*repair.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := repair.Batch(s.data, s.set, repair.Options{Weights: s.weights()})
	if err != nil {
		return nil, err
	}
	s.candidate = res
	return res, nil
}

// RepairAccept computes a repair and commits it in one critical
// section, so the result the caller sees is exactly what was committed
// — the atomic variant service handlers need (a separate Repair +
// Accept pair can interleave with another client's Repair and commit a
// different candidate than the one returned).
func (s *Session) RepairAccept() (*repair.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	res, err := repair.Batch(s.data, s.set, repair.Options{Weights: s.weights()})
	if err != nil {
		return nil, err
	}
	if err := s.journalChanges(res.Changes); err != nil {
		return nil, err
	}
	s.mutated()
	s.data = res.Repaired
	return res, nil
}

// journalChanges logs a repair's cell-change list (the effect, not the
// repair computation) before the commit is acked. Caller holds the
// write lock and must not commit on error.
func (s *Session) journalChanges(changes []repair.Change) error {
	if s.journal == nil || len(changes) == 0 {
		return nil
	}
	if err := s.journal.LogCells(s.name, changeCells(changes), false); err != nil {
		return fmt.Errorf("engine: journaling repair commit: %w", err)
	}
	return nil
}

// Candidate returns the cached candidate repair (nil before Repair or
// after any mutation).
func (s *Session) Candidate() *repair.Result {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.candidate
}

// Accept commits the cached candidate repair as the current data.
func (s *Session) Accept() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOpen(); err != nil {
		return err
	}
	if s.candidate == nil {
		return fmt.Errorf("engine: no candidate repair; call Repair first")
	}
	if err := s.journalChanges(s.candidate.Changes); err != nil {
		return err
	}
	repaired := s.candidate.Repaired
	s.mutated()
	s.data = repaired
	return nil
}

// Edit is the interactive override: set a cell to a value and mark it
// confirmed, so subsequent repairs treat it as ground truth and resolve
// conflicts by changing other cells.
func (s *Session) Edit(tid, attr int, v relation.Value) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOpen(); err != nil {
		return err
	}
	if err := s.checkCell(tid, attr); err != nil {
		return err
	}
	if s.journal != nil {
		// Log-before-apply: the edit is fully determined up front
		// (replay's Set applies the same kind coercion), so a journal
		// failure leaves the session untouched.
		if err := s.journal.LogCells(s.name, []wal.CellWrite{{TID: tid, Attr: attr, Value: v}}, true); err != nil {
			return fmt.Errorf("engine: journaling edit: %w", err)
		}
	}
	s.data.Set(tid, attr, v)
	s.confirmed[[2]int{tid, attr}] = true
	s.mutated()
	return nil
}

// Confirm marks a cell's current value as user-verified without
// changing it.
func (s *Session) Confirm(tid, attr int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOpen(); err != nil {
		return err
	}
	if err := s.checkCell(tid, attr); err != nil {
		return err
	}
	if s.journal != nil {
		if err := s.journal.LogConfirm(s.name, tid, attr); err != nil {
			return fmt.Errorf("engine: journaling confirm: %w", err)
		}
	}
	s.confirmed[[2]int{tid, attr}] = true
	return nil
}

func (s *Session) checkCell(tid, attr int) error {
	if tid < 0 || tid >= s.data.Len() {
		return fmt.Errorf("engine: TID %d out of range", tid)
	}
	if attr < 0 || attr >= s.data.Schema().Arity() {
		return fmt.Errorf("engine: attribute %d out of range", attr)
	}
	return nil
}

// ConfirmedCells returns the confirmed cells, sorted by (TID, attr).
func (s *Session) ConfirmedCells() [][2]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][2]int, 0, len(s.confirmed))
	for c := range s.confirmed {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Append inserts new tuples into the session relation and repairs only
// them incrementally (repair.IncInPlace), assuming the current data is
// clean. This is the service route for POST /v1/repair/incremental.
//
// Unlike the one-shot repair.AppendAndRepair, nothing is cloned and the
// relation keeps its identity: the session's PLI cache survives the
// append, the incremental detection inside the repair absorbs the delta
// into the cached partitions (PLI.Advance via IndexCache.GetDelta)
// instead of rebuilding them, and the repair's own cell writes come
// back as journaled patches drained into those same partitions in
// O(group) per write (PLI.Patch via the cache's catch-up) — so even a
// DIRTY append (delta cells rewritten by the repair) leaves every
// cached index warm: the steady-state cost is "extend each partition by
// the delta, re-home the repaired cells", not "re-partition the
// dataset". On failure the appended rows (and any partial delta
// repairs) are rolled back with Truncate, leaving the session exactly
// as before.
func (s *Session) Append(tuples []relation.Tuple) (*repair.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	// A validly cached violation list — empty OR non-empty — survives
	// the append. Empty: the base is known clean, and IncInPlace's
	// contract is that a delta repaired onto a clean base leaves the
	// whole relation violation-free. Non-empty: IncInPlace's
	// postcondition is that the repaired delta introduces no violation
	// of its own (a delta tuple landing in a base-conflicted group makes
	// the repair error out and the append roll back instead), base cells
	// are never written, and appends can neither create nor fix a
	// base-only violation — so the cached list still names exactly the
	// grown relation's violations and the next Violations() is O(1), no
	// re-detection (asserted via cache counters in the engine tests).
	// The non-empty carry-over is re-verified by re-checking only the
	// delta tuples' groups (deltaClean — O(delta), on the same cached
	// partitions the repair just advanced/patched); a non-empty residue
	// there is never expected and falls back to plain invalidation.
	hadVio, cached := s.vioValid, s.violations
	base := s.data.Len()
	deltaTIDs := make([]int, 0, len(tuples))
	for _, t := range tuples {
		tid, err := s.data.Insert(t.Clone())
		if err != nil {
			s.data.Truncate(base)
			return nil, err
		}
		deltaTIDs = append(deltaTIDs, tid)
	}
	res, err := repair.IncInPlace(s.data, s.set, deltaTIDs, repair.Options{Weights: s.weights()}, s.indexes)
	if err != nil {
		s.data.Truncate(base)
		return nil, err
	}
	if s.journal != nil {
		// Log the delta rows' POST-repair final values, so replay is raw
		// insertion with zero repair work. A journal failure rolls the
		// append back with Truncate — the same rollback the repair-failure
		// path uses — which also invalidates every patch the repair just
		// journaled into the relation's columns, keeping the in-memory
		// state and the WAL tail (which never saw this batch) consistent.
		rows := make([]relation.Tuple, len(deltaTIDs))
		for i, tid := range deltaTIDs {
			rows[i] = s.data.Tuple(tid)
		}
		if err := s.journal.LogAppend(s.name, rows); err != nil {
			s.data.Truncate(base)
			return nil, fmt.Errorf("engine: journaling append: %w", err)
		}
	}
	s.mutated()
	if hadVio && (len(cached) == 0 || s.deltaClean(deltaTIDs)) {
		s.violations, s.vioValid = cached, true
	}
	return res, nil
}

// deltaClean re-checks only the given (just-repaired) delta tuples'
// groups against every CFD and reports whether they are violation-free
// — the defensive half of Append's non-empty violation-list carry-over.
// Runs on the session's warm PLI cache with delta-tolerant lookups, so
// the cost is O(delta groups), never a rebuild. Caller holds the write
// lock.
func (s *Session) deltaClean(deltaTIDs []int) bool {
	for _, c := range s.set.All() {
		pli := s.indexes.GetDelta(s.data, c.LHS())
		if len(cfd.IncDetect(s.data, c, pli, deltaTIDs)) > 0 {
			return false
		}
	}
	return true
}

// Discover profiles the current data for CFDs. If install is true the
// discovered set replaces the session constraints (after the usual
// checks). The lattice walk runs on the session's per-dataset PLI
// cache, so a warm session (repeated discovery, or discovery after
// detection, over unchanged data) partitions nothing; within each
// lattice level the independent refinements fan out over the session's
// worker pool (opts.Workers left zero defaults to the session workers,
// i.e. runtime.NumCPU()).
func (s *Session) Discover(opts discovery.Options, install bool) ([]*cfd.CFD, error) {
	s.mu.RLock()
	opts.Cache = s.indexes
	if opts.Workers == 0 {
		if opts.Workers = s.workers; opts.Workers <= 0 {
			opts.Workers = runtime.NumCPU()
		}
	}
	found, err := discovery.Discover(s.data, opts)
	s.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	if !install {
		return found, nil
	}
	set := cfd.NewSet(s.Schema())
	for _, c := range found {
		if err := set.Add(c); err != nil {
			return nil, err
		}
	}
	if err := s.SetConstraints(set); err != nil {
		return nil, err
	}
	return found, nil
}

// Summary renders a short session status report.
func (s *Session) Summary() (string, error) {
	vs, err := s.Violations()
	if err != nil {
		return "", err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "project %s: %d tuples over %s\n", s.name, s.data.Len(), s.data.Schema())
	fmt.Fprintf(&b, "constraints: %d CFDs, %d pattern rows\n", s.set.Len(), s.set.TotalRows())
	constCount, varCount := 0, 0
	for _, v := range vs {
		if v.Kind == cfd.ConstViolation {
			constCount++
		} else {
			varCount++
		}
	}
	fmt.Fprintf(&b, "violations: %d constant, %d variable (%d tuples involved)\n",
		constCount, varCount, len(cfd.ViolatingTIDs(vs)))
	fmt.Fprintf(&b, "confirmed cells: %d\n", len(s.confirmed))
	if s.candidate != nil {
		fmt.Fprintf(&b, "candidate repair: %d changes, cost %.2f\n",
			len(s.candidate.Changes), s.candidate.Cost)
	}
	return b.String(), nil
}

// FormatChanges renders a candidate repair's change list for review.
func FormatChanges(r *relation.Relation, changes []repair.Change, limit int) string {
	var b strings.Builder
	for i, ch := range changes {
		if limit > 0 && i == limit {
			fmt.Fprintf(&b, "... (%d more changes)\n", len(changes)-limit)
			break
		}
		fmt.Fprintf(&b, "tuple %d, %s: %s -> %s\n",
			ch.TID, r.Schema().Attr(ch.Attr).Name, ch.From, ch.To)
	}
	return b.String()
}
