package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"semandaq/internal/datagen"
	"semandaq/internal/relation"
	"semandaq/internal/wal"
)

// openDurable opens (or reopens) a durable engine over dir: recover
// whatever the directory holds into a fresh engine, then attach the
// journal — the same sequence the daemon runs at startup.
func openDurable(t *testing.T, dir string) (*Engine, *wal.Manager, int, int) {
	t.Helper()
	m, err := wal.OpenManager(dir, wal.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 1})
	snaps, replayed, err := m.Recover(e)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	e.SetJournal(m)
	return e, m, snaps, replayed
}

// assertSameDataset asserts two sessions hold cell-identical state:
// same rows (by encoding bytes — the identity every detection and
// discovery answer depends on), same constraint/DC text, same
// confirmations.
func assertSameDataset(t *testing.T, want, got *Session) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("Len: want %d, got %d", want.Len(), got.Len())
	}
	if !want.Schema().Equal(got.Schema()) {
		t.Fatal("schema mismatch")
	}
	wd, gd := want.Data(), got.Data()
	for tid := 0; tid < want.Len(); tid++ {
		if !bytes.Equal(relation.EncodeTuple(nil, wd.Tuple(tid)), relation.EncodeTuple(nil, gd.Tuple(tid))) {
			t.Fatalf("row %d: want %v, got %v", tid, wd.Tuple(tid), gd.Tuple(tid))
		}
	}
	if w, g := want.Constraints().String(), got.Constraints().String(); w != g {
		t.Fatalf("constraints: want %q, got %q", w, g)
	}
	if w, g := want.DCs().String(), got.DCs().String(); w != g {
		t.Fatalf("DCs: want %q, got %q", w, g)
	}
	if w, g := want.ConfirmedCells(), got.ConfirmedCells(); !reflect.DeepEqual(w, g) {
		t.Fatalf("confirmed: want %v, got %v", w, g)
	}
}

// mutateMixed drives every journaled mutation path once: register two
// datasets, install constraints and DCs, append a dirty delta (the
// journal must record the POST-repair rows), repair-accept, edit,
// confirm, and drop one dataset. Returns the surviving dataset names.
func mutateMixed(t *testing.T, e *Engine) []string {
	t.Helper()
	// Dirty CFD workload with repairs, edits, confirmations.
	if _, err := e.Register("cust", dirtyCust(t, 300, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.InstallConstraints("cust", datagen.CustConstraints().String()); err != nil {
		t.Fatal(err)
	}
	s, _ := e.Get("cust")
	if _, err := s.RepairAccept(); err != nil {
		t.Fatal(err)
	}
	delta := dirtyCust(t, 40, 23)
	tuples := make([]relation.Tuple, delta.Len())
	for i := range tuples {
		tuples[i] = delta.Tuple(i).Clone()
	}
	if _, err := s.Append(tuples); err != nil {
		t.Fatal(err)
	}
	if err := s.Edit(5, 3, relation.String("edited")); err != nil {
		t.Fatal(err)
	}
	if err := s.Confirm(7, 2); err != nil {
		t.Fatal(err)
	}

	// Mixed-kind DC workload (Emp has int and float columns).
	if _, err := e.Register("emp", datagen.Emp(200, 10, 31)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.InstallDCs("emp", datagen.EmpDCText()); err != nil {
		t.Fatal(err)
	}

	// A dataset that is registered then dropped must not resurrect.
	if _, err := e.Register("doomed", datagen.Cust(20, 7)); err != nil {
		t.Fatal(err)
	}
	if !e.Drop("doomed") {
		t.Fatal("drop failed")
	}
	return []string{"cust", "emp"}
}

// TestEngineRecoveryRoundTrip is the tentpole property: after a mixed
// mutation history, recovery from the WAL alone (no snapshot) rebuilds
// cell-identical state — and does so with ZERO detection or repair
// work (the journal records effects, so replay is raw insertion).
func TestEngineRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e1, m1, _, _ := openDurable(t, dir)
	names := mutateMixed(t, e1)
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, m2, snaps, replayed := openDurable(t, dir)
	defer m2.Close()
	if snaps != 0 {
		t.Fatalf("unexpected snapshots: %d", snaps)
	}
	if replayed == 0 {
		t.Fatal("nothing replayed")
	}
	if got := e2.List(); !reflect.DeepEqual(got, names) {
		t.Fatalf("List = %v, want %v", got, names)
	}
	for _, name := range names {
		w, _ := e1.Get(name)
		g, ok := e2.Get(name)
		if !ok {
			t.Fatalf("dataset %q lost", name)
		}
		assertSameDataset(t, w, g)
		if stats := g.IndexStats(); stats.Misses != 0 || stats.Refines != 0 {
			t.Fatalf("%q: replay did detection work: %+v", name, stats)
		}
	}
}

// TestEngineRecoveryFromCheckpoint covers the snapshot + tail-replay
// path: checkpoint mid-history, mutate more, recover — the state must
// match, the checkpoint must be used, and compaction must have
// shrunk the log to the post-checkpoint tail.
func TestEngineRecoveryFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e1, m1, _, _ := openDurable(t, dir)
	names := mutateMixed(t, e1)
	preSize := m1.LogSize()
	if err := m1.Checkpoint(e1); err != nil {
		t.Fatal(err)
	}
	if m1.LogSize() >= preSize {
		t.Fatalf("checkpoint did not compact: %d -> %d", preSize, m1.LogSize())
	}
	// Post-checkpoint tail: one more append on cust.
	s, _ := e1.Get("cust")
	delta := datagen.Cust(10, 41)
	tuples := make([]relation.Tuple, delta.Len())
	for i := range tuples {
		tuples[i] = delta.Tuple(i).Clone()
	}
	if _, err := s.Append(tuples); err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, m2, snaps, _ := openDurable(t, dir)
	defer m2.Close()
	if snaps != len(names) {
		t.Fatalf("snapshots used: %d, want %d", snaps, len(names))
	}
	for _, name := range names {
		w, _ := e1.Get(name)
		g, ok := e2.Get(name)
		if !ok {
			t.Fatalf("dataset %q lost", name)
		}
		assertSameDataset(t, w, g)
	}
	// Fresh writes after recovery must not collide with checkpointed
	// seqs: another append, another recovery.
	s2, _ := e2.Get("cust")
	if _, err := s2.Append(tuples[:3]); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, m3, _, _ := openDurable(t, dir)
	defer m3.Close()
	g3, _ := e3.Get("cust")
	w2, _ := e2.Get("cust")
	assertSameDataset(t, w2, g3)
}

// TestEngineRecoveryTornTail pins the crash-mid-write contract: a
// torn final record (the crash cut an append mid-frame) is silently
// dropped, recovery lands on the previous record's state, and the log
// accepts new writes cleanly afterwards.
func TestEngineRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	e1, m1, _, _ := openDurable(t, dir)
	if _, err := e1.Register("cust", datagen.Cust(100, 3)); err != nil {
		t.Fatal(err)
	}
	s, _ := e1.Get("cust")
	appendClean := func(n int, seed int64) {
		delta := datagen.Cust(n, seed)
		tuples := make([]relation.Tuple, delta.Len())
		for i := range tuples {
			tuples[i] = delta.Tuple(i).Clone()
		}
		if _, err := s.Append(tuples); err != nil {
			t.Fatal(err)
		}
	}
	appendClean(20, 11)
	lenAfterA := s.Len()
	appendClean(15, 13) // the record the "crash" tears
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	e2, m2, _, _ := openDurable(t, dir)
	defer m2.Close()
	g, ok := e2.Get("cust")
	if !ok {
		t.Fatal("dataset lost")
	}
	if g.Len() != lenAfterA {
		t.Fatalf("recovered Len = %d, want %d (torn append dropped whole)", g.Len(), lenAfterA)
	}
	wd, gd := s.Data(), g.Data()
	for tid := 0; tid < lenAfterA; tid++ {
		if !bytes.Equal(relation.EncodeTuple(nil, wd.Tuple(tid)), relation.EncodeTuple(nil, gd.Tuple(tid))) {
			t.Fatalf("row %d diverged", tid)
		}
	}
	// The truncated tail must not poison new appends.
	s2, _ := e2.Get("cust")
	delta := datagen.Cust(5, 17)
	tuples := make([]relation.Tuple, delta.Len())
	for i := range tuples {
		tuples[i] = delta.Tuple(i).Clone()
	}
	if _, err := s2.Append(tuples); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, m3, _, _ := openDurable(t, dir)
	defer m3.Close()
	g3, _ := e3.Get("cust")
	if g3.Len() != lenAfterA+5 {
		t.Fatalf("post-torn append lost: Len = %d", g3.Len())
	}
}

// TestDropRefusesStaleHandleMutations pins the drop/append WAL
// ordering: a session handle obtained before Drop must refuse every
// mutation afterwards, so no record for the dataset can follow its
// drop record in the log — replay applies records in order and a
// post-drop append would hit an unknown dataset and fail recovery.
func TestDropRefusesStaleHandleMutations(t *testing.T) {
	dir := t.TempDir()
	e1, m1, _, _ := openDurable(t, dir)
	if _, err := e1.Register("ds", datagen.Cust(30, 3)); err != nil {
		t.Fatal(err)
	}
	s, _ := e1.Get("ds")
	if !e1.Drop("ds") {
		t.Fatal("drop failed")
	}
	delta := datagen.Cust(5, 7)
	tuples := make([]relation.Tuple, delta.Len())
	for i := range tuples {
		tuples[i] = delta.Tuple(i).Clone()
	}
	if _, err := s.Append(tuples); err == nil {
		t.Fatal("Append through a stale handle succeeded after Drop")
	}
	if err := s.Edit(0, 0, relation.String("x")); err == nil {
		t.Fatal("Edit through a stale handle succeeded after Drop")
	}
	if err := s.Confirm(0, 0); err == nil {
		t.Fatal("Confirm through a stale handle succeeded after Drop")
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	// The log must replay cleanly: nothing after the drop record.
	e2, m2, _, _ := openDurable(t, dir)
	defer m2.Close()
	if _, ok := e2.Get("ds"); ok {
		t.Fatal("dropped dataset resurrected")
	}
}

// dropDuringCheckpoint simulates a Drop landing between a checkpoint's
// dataset capture and its compaction — the window where the snapshot
// file is freshly written but the drop record is already in the log.
// Compaction must NOT sweep the drop record while the snapshot file
// exists, or recovery would load the snapshot and resurrect a dataset
// whose drop was acked.
type dropDuringCheckpoint struct {
	*Engine
	target string
}

func (d *dropDuringCheckpoint) CaptureDataset(name string, seq func() uint64) (*wal.DatasetSnapshot, bool) {
	snap, ok := d.Engine.CaptureDataset(name, seq)
	if ok && name == d.target {
		d.target = ""
		if !d.Engine.Drop(name) {
			return snap, ok // journal failure surfaces as resurrection below
		}
	}
	return snap, ok
}

func TestDropDuringCheckpointNotResurrected(t *testing.T) {
	dir := t.TempDir()
	e1, m1, _, _ := openDurable(t, dir)
	if _, err := e1.Register("ds", datagen.Cust(30, 3)); err != nil {
		t.Fatal(err)
	}
	if err := m1.Checkpoint(&dropDuringCheckpoint{Engine: e1, target: "ds"}); err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	e2, m2, _, _ := openDurable(t, dir)
	defer m2.Close()
	if _, ok := e2.Get("ds"); ok {
		t.Fatal("dataset dropped mid-checkpoint resurrected by recovery")
	}
}

// TestCheckpointAfterDropConverges drives the full drop-sweep sequence
// across checkpoints: snapshot, drop, then repeated checkpoints. Each
// intermediate on-disk state must recover to "dataset absent", and the
// sweep must eventually remove both the snapshot file and the drop
// record.
func TestCheckpointAfterDropConverges(t *testing.T) {
	dir := t.TempDir()
	e1, m1, _, _ := openDurable(t, dir)
	if _, err := e1.Register("ds", datagen.Cust(30, 3)); err != nil {
		t.Fatal(err)
	}
	if err := m1.Checkpoint(e1); err != nil {
		t.Fatal(err)
	}
	if !e1.Drop("ds") {
		t.Fatal("drop failed")
	}
	for i := 0; i < 3; i++ {
		if err := m1.Checkpoint(e1); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}
	if size := m1.LogSize(); size != 0 {
		t.Fatalf("drop record not swept: log size %d", size)
	}
	if snaps, _ := filepath.Glob(filepath.Join(dir, "*.snap")); len(snaps) != 0 {
		t.Fatalf("snapshot files not swept: %v", snaps)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	e2, m2, _, _ := openDurable(t, dir)
	defer m2.Close()
	if _, ok := e2.Get("ds"); ok {
		t.Fatal("dropped dataset resurrected")
	}
}

// TestRecoverSkipsOrphanRecords pins checkpoint-crash tolerance: tail
// records whose dataset has neither a snapshot nor a register record
// (its history was partially compacted around a drop before a crash)
// are skipped, not fatal — a daemon must never be unable to start
// because of dead records for a dropped dataset.
func TestRecoverSkipsOrphanRecords(t *testing.T) {
	dir := t.TempDir()
	m, err := wal.OpenManager(dir, wal.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	// An orphan append, cell-write and lone drop, as a crashed
	// checkpoint can leave behind; then a legitimate dataset.
	if err := m.LogAppend("ghost", []relation.Tuple{{relation.String("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := m.LogCells("ghost", []wal.CellWrite{{TID: 0, Attr: 0, Value: relation.String("y")}}, false); err != nil {
		t.Fatal(err)
	}
	if err := m.LogDrop("ghost"); err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 1})
	if _, _, err := m.Recover(e); err != nil {
		t.Fatalf("recover with orphan records: %v", err)
	}
	e.SetJournal(m)
	if _, err := e.Register("live", datagen.Cust(10, 5)); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	e2, m2, _, _ := openDurable(t, dir)
	defer m2.Close()
	if _, ok := e2.Get("ghost"); ok {
		t.Fatal("orphan records materialized a dataset")
	}
	if _, ok := e2.Get("live"); !ok {
		t.Fatal("legitimate dataset lost")
	}
}

// TestDropNotResurrected pins the journal-first drop ordering end to
// end: drop, crash, recover — gone; and the registered-then-dropped
// name is reusable after recovery.
func TestDropNotResurrected(t *testing.T) {
	dir := t.TempDir()
	e1, m1, _, _ := openDurable(t, dir)
	if _, err := e1.Register("ds", datagen.Cust(30, 3)); err != nil {
		t.Fatal(err)
	}
	if err := m1.Checkpoint(e1); err != nil {
		t.Fatal(err)
	}
	if !e1.Drop("ds") {
		t.Fatal("drop failed")
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	e2, m2, _, _ := openDurable(t, dir)
	defer m2.Close()
	if _, ok := e2.Get("ds"); ok {
		t.Fatal("dropped dataset resurrected by recovery")
	}
	if _, err := e2.Register("ds", datagen.Cust(10, 5)); err != nil {
		t.Fatalf("name not reusable after recovered drop: %v", err)
	}
}
