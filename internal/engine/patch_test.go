package engine

import (
	"reflect"
	"sync"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/discovery"
	"semandaq/internal/relation"
)

// chainedCustConstraints returns a CFD set where one rule's RHS feeds
// another rule's LHS: psi1 repairs CT from the (CC, AC) region tableau,
// and psi2 reads CT in its LHS — so a repair Set on CT lands in the
// patch journal of a column a cached detection partition is keyed on.
// Both rules hold on clean datagen.Cust data (zip prefixes are unique
// per region, so (CT, ZIP) determines STR globally). This is the shape
// the per-cell patch pipeline exists for: without it, every dirty
// append would invalidate the psi2 partition wholesale.
func chainedCustConstraints(t testing.TB) *cfd.Set {
	t.Helper()
	set, err := cfd.ParseSet(`
cfd psi1: cust([CC, AC] -> [CT]) { ('44', '131' || 'edi'), ('44', '141' || 'gla'), ('44', '20' || 'ldn'), ('01', '908' || 'mh'), ('01', '212' || 'nyc'), ('01', '650' || 'mtv') }
cfd psi2: cust([CT, ZIP] -> [STR])
`, datagen.CustSchema())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// corruptCT clones base rows into a delta batch and corrupts the CT
// cell of every third tuple — dirty appends psi1 repairs by writing CT,
// which is exactly a patch into psi2's cached LHS partition.
func corruptCT(base *relation.Relation, round, count int) []relation.Tuple {
	ct := base.Schema().MustIndex("CT")
	tuples := make([]relation.Tuple, count)
	for i := range tuples {
		tuples[i] = base.Tuple((round*count + i*53) % base.Len()).Clone()
		if i%3 == 0 {
			tuples[i][ct] = relation.String("zzz-corrupt")
		}
	}
	return tuples
}

// TestAppendRepairDetectPatchesNotRebuilds is the engine-level
// acceptance criterion of per-cell PLI patching: on a warm session with
// CHAINED constraints, a dirty append → incremental repair → detect
// cycle performs ZERO partition rebuilds — the repair's CT writes are
// drained into the cached (CT, ZIP) partition as journaled patches
// (Patches grows) while Misses and Refines stay frozen — and the
// patched-partition detection result equals a cold run.
func TestAppendRepairDetectPatchesNotRebuilds(t *testing.T) {
	base := datagen.Cust(10_000, 61)
	s, err := NewSession("patch-warm", base, chainedCustConstraints(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Detect(); err != nil {
		t.Fatal(err)
	}
	warm := s.IndexStats()
	if warm.Misses == 0 {
		t.Fatal("warm-up built nothing?")
	}

	const rounds, delta = 3, 90
	for round := 0; round < rounds; round++ {
		res, err := s.Append(corruptCT(base, round, delta))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Changes) == 0 {
			t.Fatalf("round %d: corrupted delta repaired no cells", round)
		}
		for _, ch := range res.Changes {
			if ch.TID < base.Len() {
				t.Fatalf("round %d: repair modified base tuple %d", round, ch.TID)
			}
		}
		vs, err := s.Detect()
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 0 {
			t.Fatalf("round %d: %d violations after repaired dirty append", round, len(vs))
		}
	}
	if s.Len() != base.Len()+rounds*delta {
		t.Fatalf("session length = %d", s.Len())
	}

	after := s.IndexStats()
	if after.Misses != warm.Misses || after.Refines != warm.Refines {
		t.Fatalf("dirty append+repair+detect rebuilt partitions: %+v -> %+v", warm, after)
	}
	if after.Patches == 0 {
		t.Fatalf("repair writes drained without patches being counted: %+v", after)
	}
	if after.Advances == 0 {
		t.Fatalf("appends absorbed without advances being counted: %+v", after)
	}

	// The patched-partition detection result equals a cold run.
	warmVs, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	coldVs, err := cfd.NewDetector(s.Constraints()).Detect(s.Data())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmVs, coldVs) {
		t.Fatal("patched-index detection diverges from cold detection")
	}
}

// TestAppendKeepsNonEmptyViolationCache extends the incremental
// violation-maintenance property to a DIRTY base: a session whose
// cached violation list is non-empty (a planted base violation the
// repair never touches) keeps that list valid across appends — the
// appended tuples are repaired onto the base without creating or fixing
// base-only violations, so Violations() after Append answers from the
// cache with zero detection work, and the carried-over list equals a
// from-scratch detection of the grown relation.
func TestAppendKeepsNonEmptyViolationCache(t *testing.T) {
	base := datagen.Cust(3_000, 71)
	ct := base.Schema().MustIndex("CT")
	// Plant one base violation: a CT outside its region tableau row.
	base.Set(5, ct, relation.String("zzz-planted"))
	s, err := NewSession("dirty-base", base, chainedCustConstraints(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := s.Detect() // primes the cache; the planted violation is in it
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("planted base violation not detected")
	}

	for round := 0; round < 3; round++ {
		if _, err := s.Append(corruptCT(base, round, 40)); err != nil {
			t.Fatal(err)
		}
		after := s.IndexStats()
		got, err := s.Violations()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, vs) {
			t.Fatalf("round %d: cached violations changed across append: %d -> %d", round, len(vs), len(got))
		}
		if now := s.IndexStats(); now != after {
			t.Fatalf("round %d: Violations() re-detected after append: %+v -> %+v", round, after, now)
		}
	}

	// Ground truth: the carried-over list equals cold detection of the
	// grown relation.
	cold, err := cfd.NewDetector(s.Constraints()).Detect(s.Data())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vs, cold) {
		t.Fatalf("carried-over violations diverge from cold detection: %d vs %d", len(vs), len(cold))
	}

	// An Edit still invalidates the list.
	before := s.IndexStats()
	if err := s.Edit(9, ct, relation.String("zzz-edited")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Violations(); err != nil {
		t.Fatal(err)
	}
	if got := s.IndexStats(); got == before {
		t.Fatal("Violations() after an Edit did no detection work")
	}
}

// TestConcurrentDirtyAppendDetectDiscover is the -race companion of the
// patch pipeline (run via `make race-cache`): dirty appends — whose
// repairs Set delta cells and therefore drain patches into the shared
// cached partitions — race shared-lock detection and discovery on one
// session. The per-entry patch/advance serialization plus the
// copy-on-write compaction of still-shared dirty entries must keep
// every reader coherent; this is the same shape as the PR 6
// compaction race, with patches instead of appends as the mutator.
func TestConcurrentDirtyAppendDetectDiscover(t *testing.T) {
	base := datagen.Cust(2_000, 83)
	s, err := NewSession("patch-conc", base, chainedCustConstraints(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Detect(); err != nil {
		t.Fatal(err)
	}

	const rounds = 6
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := s.Append(corruptCT(base, w*rounds+i, 20)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := s.Detect(); err != nil {
					errCh <- err
					return
				}
				if _, err := s.Violations(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds/2; i++ {
				if _, err := s.Discover(discovery.Options{MinSupport: 10, MaxLHS: 2}, false); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if s.Len() != base.Len()+2*rounds*20 {
		t.Fatalf("session length = %d after concurrent appends", s.Len())
	}
	vs, err := s.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("%d violations after repaired concurrent dirty appends", len(vs))
	}
	if after := s.IndexStats(); after.Patches == 0 {
		t.Fatalf("concurrent dirty appends never patched a partition: %+v", after)
	}
}
