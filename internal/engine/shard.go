package engine

import (
	"fmt"

	"semandaq/internal/cfd"
	"semandaq/internal/dc"
	"semandaq/internal/relation"
)

// Worker-side session methods of scatter-gather detection: a worker
// process owns a TID-range slice of a dataset as an ordinary Session
// (registered through RegisterExact so shard tuples reproduce the
// coordinator's bit for bit) and answers the coordinator's shard
// protocol from the same locked, index-cached state every local request
// uses. All three run under the read lock, so they interleave with
// local appends and other detections exactly like Detect does.

// RegisterExact registers a dataset from pre-validated tuples via the
// exact-reproduction ingest path (relation.InsertUnchecked): no kind
// validation or coercion, so a shard's interned codes and group keys
// match the tuples' origin bit for bit — including kind-mismatched
// cells an unchecked Set left behind. This is the worker registration
// path; user-facing ingest stays on Register.
func (e *Engine) RegisterExact(name string, schema *relation.Schema, tuples []relation.Tuple) (*Session, error) {
	data := relation.New(schema)
	for i, t := range tuples {
		if len(t) != schema.Arity() {
			return nil, fmt.Errorf("engine: tuple %d has %d values, schema %s expects %d",
				i, len(t), schema.Name(), schema.Arity())
		}
		data.InsertUnchecked(t)
	}
	return e.Register(name, data)
}

// ShardDetect runs shard-local detection keyed by X-group
// (cfd.DetectShards) over the session data. set == nil detects the
// installed constraint set; a non-nil set (e.g. a discovery candidate
// set the coordinator is verifying) must match the schema.
func (s *Session) ShardDetect(set *cfd.Set) ([]cfd.ShardResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if set == nil {
		set = s.set
	}
	return cfd.DetectShards(s.data, set, s.indexes, s.workers)
}

// ShardGroups answers the coordinator's boundary-group fetch: for each
// composite key over partAttrs, the matching local group's TIDs
// (shard-local — the coordinator translates) and member tuples
// populated on valAttrs.
func (s *Session) ShardGroups(partAttrs, valAttrs []int, keys []string) ([]cfd.BoundaryGroup, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	arity := s.data.Schema().Arity()
	for _, attrs := range [][]int{partAttrs, valAttrs} {
		for _, a := range attrs {
			if a < 0 || a >= arity {
				return nil, fmt.Errorf("engine: attribute %d out of range for schema %s", a, s.data.Schema().Name())
			}
		}
	}
	if len(partAttrs) == 0 {
		return nil, fmt.Errorf("engine: shard group fetch needs partition attributes")
	}
	return cfd.CollectGroups(s.data, s.indexes, partAttrs, valAttrs, keys), nil
}

// ShardDCResult is one installed DC's shard-local contribution.
type ShardDCResult struct {
	Name   string
	Result dc.ShardResult
}

// ShardDCs runs shard-local DC detection (dc.DetectShard) for every
// installed DC, in installation order, with untruncated violation
// lists and the shard's equality-group keys.
func (s *Session) ShardDCs() []ShardDCResult {
	s.mu.RLock()
	defer s.mu.RUnlock()
	all := s.dcs.All()
	out := make([]ShardDCResult, 0, len(all))
	for _, d := range all {
		out = append(out, ShardDCResult{Name: d.Name(), Result: dc.DetectShard(s.data, d, s.indexes)})
	}
	return out
}

// Close drops every registered dataset, removing their spill
// directories — the graceful-shutdown path of cmd/semandaqd (a plain
// kill orphans the per-dataset MkdirTemp spill stores).
func (e *Engine) Close() {
	for _, name := range e.List() {
		e.Drop(name)
	}
}
