package engine

import (
	"encoding/json"
	"fmt"
	"sort"

	"semandaq/internal/cfd"
	"semandaq/internal/dc"
	"semandaq/internal/relation"
	"semandaq/internal/wal"
)

// The coordinator's durability model is simpler than the engine's: it
// holds no tuple data, only a tiny registry (schemas, per-worker
// counts, constraint text). Its WAL records therefore carry everything
// needed to rebuild the CLUSTER — register records log the full rows
// (they double as the worker re-feed source), appends log the raw
// fields replayed through the same tail-worker path — and recovery is
// a straight replay that drops whatever stale slices the workers still
// hold and re-feeds them. The coordinator never checkpoints: its log
// is the snapshot.

// --- wal.Applier: recovery-side replay. The journal must be detached
// while these run (SetJournal after Recover).

// ApplySnapshot is unexpected: the coordinator does not checkpoint.
func (c *Coordinator) ApplySnapshot(name string, _ *wal.DatasetSnapshot) error {
	return fmt.Errorf("engine: unexpected snapshot for %q in coordinator log", name)
}

// ApplyRegister replays a cluster registration: any stale slice a
// worker still holds (it may have survived the coordinator's crash) is
// dropped, then every worker is re-fed its range partition of the
// logged rows — the same even-slices split Register performed.
func (c *Coordinator) ApplyRegister(name string, schema *relation.Schema, rows []relation.Tuple) error {
	for _, cl := range c.clients {
		_ = cl.Drop(name)
	}
	n := len(rows)
	w := len(c.clients)
	size, rem := n/w, n%w
	counts := make([]int, w)
	slices := make([][]relation.Tuple, w)
	tid := 0
	for i := 0; i < w; i++ {
		hi := tid + size
		if i < rem {
			hi++
		}
		counts[i] = hi - tid
		slices[i] = rows[tid:hi]
		tid = hi
	}
	if _, err := c.fanOut(func(w int, cl ShardClient) error {
		return cl.Register(name, schema, slices[w])
	}); err != nil {
		return err
	}
	cd := &ClusterDataset{
		name:   name,
		schema: schema,
		counts: counts,
		cfds:   cfd.NewSet(schema),
		dcs:    dc.NewSet(schema),
	}
	c.mu.Lock()
	c.datasets[name] = cd
	c.mu.Unlock()
	return nil
}

// ApplyAppend is unexpected: the coordinator journals raw appends.
func (c *Coordinator) ApplyAppend(name string, _ []relation.Tuple) error {
	return fmt.Errorf("engine: unexpected tuple-append record for %q in coordinator log", name)
}

// ApplyCells is unexpected: cluster mode has no cell-repair path.
func (c *Coordinator) ApplyCells(name string, _ []wal.CellWrite, _ bool) error {
	return fmt.Errorf("engine: unexpected cell record for %q in coordinator log", name)
}

// ApplyConfirm is unexpected: cluster mode has no confirmation path.
func (c *Coordinator) ApplyConfirm(name string, _, _ int) error {
	return fmt.Errorf("engine: unexpected confirm record for %q in coordinator log", name)
}

// ApplyConstraints replays a constraint installation on every worker.
func (c *Coordinator) ApplyConstraints(name, text string) error {
	cd, ok := c.Get(name)
	if !ok {
		return fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	set, err := cfd.ParseSet(text, cd.schema)
	if err != nil {
		return err
	}
	if _, err := c.fanOut(func(_ int, cl ShardClient) error {
		return cl.InstallConstraints(name, text)
	}); err != nil {
		return err
	}
	cd.mu.Lock()
	cd.cfds, cd.cfdText = set, text
	cd.violations, cd.vioValid = nil, false
	cd.mu.Unlock()
	return nil
}

// ApplyDCs replays a denial-constraint installation on every worker.
func (c *Coordinator) ApplyDCs(name, text string) error {
	cd, ok := c.Get(name)
	if !ok {
		return fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	set, err := dc.ParseSet(text, cd.schema)
	if err != nil {
		return err
	}
	if _, err := c.fanOut(func(_ int, cl ShardClient) error {
		return cl.InstallDCs(name, text)
	}); err != nil {
		return err
	}
	cd.mu.Lock()
	cd.dcs, cd.dcText = set, text
	cd.mu.Unlock()
	return nil
}

// ApplyDrop replays a dataset drop, tolerating a missing dataset.
func (c *Coordinator) ApplyDrop(name string) error {
	c.mu.Lock()
	delete(c.datasets, name)
	c.mu.Unlock()
	for _, cl := range c.clients {
		_ = cl.Drop(name)
	}
	return nil
}

// ApplyAppendRaw replays an append through the same tail-worker
// incremental-repair path the original took, so the worker ends with
// the same repaired delta.
func (c *Coordinator) ApplyAppendRaw(name string, rows [][]string) error {
	cd, ok := c.Get(name)
	if !ok {
		return fmt.Errorf("engine: %w: %q", ErrUnknownDataset, name)
	}
	last := len(c.clients) - 1
	n, err := c.clients[last].Append(name, rows)
	if err != nil {
		return err
	}
	cd.mu.Lock()
	cd.counts[last] += n
	cd.violations, cd.vioValid = nil, false
	cd.mu.Unlock()
	return nil
}

// DatasetArity resolves the schema arity replay needs to decode rows.
func (c *Coordinator) DatasetArity(name string) (int, bool) {
	cd, ok := c.Get(name)
	if !ok {
		return 0, false
	}
	return cd.schema.Arity(), true
}

// --- registry mirror.

// RegistryDataset is one dataset's entry in the JSON registry mirror.
type RegistryDataset struct {
	Name    string `json:"name"`
	Schema  string `json:"schema"`
	Counts  []int  `json:"worker_counts"`
	CFDText string `json:"cfds,omitempty"`
	DCText  string `json:"dcs,omitempty"`
}

// Registry is the coordinator's registry-mirror document.
type Registry struct {
	Workers  []string          `json:"workers"`
	Datasets []RegistryDataset `json:"datasets"`
}

// mirrorRegistry writes the coordinator's registry as JSON next to the
// WAL when the journal supports it (wal.Manager does). Informational —
// an operator-readable description of the cluster; the WAL is the
// authoritative recovery source — so failures are ignored.
func (c *Coordinator) mirrorRegistry() {
	j := c.getJournal()
	rw, ok := j.(RegistryWriter)
	if !ok {
		return
	}
	reg := Registry{Workers: c.Workers()}
	for _, name := range c.List() {
		cd, ok := c.Get(name)
		if !ok {
			continue
		}
		cd.mu.RLock()
		reg.Datasets = append(reg.Datasets, RegistryDataset{
			Name:    name,
			Schema:  cd.schema.String(),
			Counts:  append([]int(nil), cd.counts...),
			CFDText: cd.cfdText,
			DCText:  cd.dcText,
		})
		cd.mu.RUnlock()
	}
	sort.Slice(reg.Datasets, func(i, k int) bool { return reg.Datasets[i].Name < reg.Datasets[k].Name })
	data, err := json.MarshalIndent(reg, "", "  ")
	if err != nil {
		return
	}
	_ = rw.WriteRegistry(data)
}
