package sqlgen

import (
	"math/rand"
	"strings"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/relation"
)

func eCFDFixture(t *testing.T) (*cfd.ECFD, *relation.Schema) {
	t.Helper()
	s := custSchema(t)
	// For CC in {44, 01}: city must not be 'atlantis' and, within the
	// scope, (CC, AC) determines CT.
	e, err := cfd.NewECFD("e1", s,
		[]string{"CC", "AC"}, []string{"CT"},
		[][]cfd.EPattern{
			{cfd.EInP(relation.String("44"), relation.String("01")), cfd.EAnyP(), cfd.ENotInP(relation.String("atlantis"))},
			{cfd.EAnyP(), cfd.EAnyP(), cfd.EAnyP()},
		})
	if err != nil {
		t.Fatal(err)
	}
	return e, s
}

func TestForECFDShape(t *testing.T) {
	e, _ := eCFDFixture(t)
	g, err := ForECFD(e, "cust")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.QC) != 1 || len(g.QV) != 1 {
		t.Fatalf("QC=%d QV=%d, want 1 and 1", len(g.QC), len(g.QV))
	}
	if !strings.Contains(g.QC[0], "IN ('01', '44')") && !strings.Contains(g.QC[0], "IN ('44', '01')") {
		t.Errorf("QC missing IN list: %s", g.QC[0])
	}
	if !strings.Contains(g.QC[0], "IN ('atlantis')") {
		t.Errorf("QC missing negation violation: %s", g.QC[0])
	}
	if !strings.Contains(g.QV[0], "GROUP BY") {
		t.Errorf("QV missing grouping: %s", g.QV[0])
	}
}

func TestECFDSQLEquivalenceRandomized(t *testing.T) {
	e, s := eCFDFixture(t)
	rng := rand.New(rand.NewSource(77))
	ccs := []string{"44", "01", "07"}
	acs := []string{"131", "908"}
	cities := []string{"edi", "mh", "atlantis"}
	for trial := 0; trial < 10; trial++ {
		r := relation.New(s)
		for i := 0; i < 40+rng.Intn(60); i++ {
			tup := strTuple(
				ccs[rng.Intn(3)], acs[rng.Intn(2)], "p", "n", "s",
				cities[rng.Intn(3)], "Z")
			if rng.Intn(25) == 0 {
				tup[rng.Intn(len(tup))] = relation.Null()
			}
			r.MustInsert(tup)
		}
		native, err := cfd.DetectECFD(r, e)
		if err != nil {
			t.Fatal(err)
		}
		nativeTIDs := cfd.ViolatingTIDs(native)

		rn := NewRunner()
		if _, err := rn.Load("cust", r); err != nil {
			t.Fatal(err)
		}
		sqlTIDs, err := rn.DetectECFD(e, "cust")
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(sqlTIDs, nativeTIDs) {
			t.Fatalf("trial %d: SQL %v != native %v", trial, sqlTIDs, nativeTIDs)
		}
	}
}

func TestECFDSQLRejectsNonString(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attribute{Name: "A", Kind: relation.KindInt},
		relation.Attribute{Name: "B", Kind: relation.KindString})
	e, err := cfd.NewECFD("x", s, []string{"A"}, []string{"B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ForECFD(e, "r"); err == nil {
		t.Error("int attribute should be rejected")
	}
}
