package sqlgen

import (
	"math/rand"
	"strings"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/cind"
	"semandaq/internal/relation"
)

func custSchema(t *testing.T) *relation.Schema {
	t.Helper()
	s, err := relation.StringSchema("cust", "CC", "AC", "PN", "NM", "STR", "CT", "ZIP")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func strTuple(vals ...string) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.String(v)
	}
	return t
}

func custData(t *testing.T) *relation.Relation {
	t.Helper()
	r := relation.New(custSchema(t))
	r.MustInsert(strTuple("44", "131", "1111111", "mike", "mayfield rd", "edi", "EH4 8LE"))
	r.MustInsert(strTuple("44", "131", "2222222", "rick", "mayfield rd", "edi", "EH4 8LE"))
	r.MustInsert(strTuple("44", "131", "3333333", "anna", "crichton st", "edi", "EH8 9LE"))
	r.MustInsert(strTuple("01", "908", "4444444", "joe", "mtn ave", "mh", "07974"))
	r.MustInsert(strTuple("01", "908", "5555555", "ben", "high st", "mh", "07974"))
	r.MustInsert(strTuple("01", "212", "6666666", "kim", "broadway", "nyc", "10012"))
	return r
}

func TestGeneratedQueriesShape(t *testing.T) {
	s := custSchema(t)
	c := cfd.MustParse("cfd phi: cust([CC, ZIP] -> [STR]) { ('44', _ || _) }", s)
	gens, err := ForCFD(c, "cust", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 {
		t.Fatalf("generated %d", len(gens))
	}
	g := gens[0]
	if g.Enc.Len() != 1 {
		t.Errorf("enc rows = %d", g.Enc.Len())
	}
	if !strings.Contains(g.QC, "SELECT DISTINCT t._tid") || !strings.Contains(g.QC, g.EncName) {
		t.Errorf("QC = %s", g.QC)
	}
	if !strings.Contains(g.QV, "GROUP BY t.CC, t.ZIP") || !strings.Contains(g.QV, "HAVING") {
		t.Errorf("QV = %s", g.QV)
	}
	if len(g.PerRow) != 0 {
		t.Errorf("single-row tableau should have no separate per-row plans, got %d", len(g.PerRow))
	}
	// A multi-row tableau generates one full query pair per row.
	c2 := cfd.MustParse(`cust([CC, AC] -> [CT]) { ('44', '131' || 'edi'), ('01', '908' || 'mh') }`, s)
	gens2, err := ForCFD(c2, "cust", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(gens2[0].PerRow) != 2 {
		t.Fatalf("per-row plans = %d, want 2", len(gens2[0].PerRow))
	}
	for _, sg := range gens2[0].PerRow {
		if sg.Enc.Len() != 1 {
			t.Errorf("per-row enc rows = %d, want 1", sg.Enc.Len())
		}
		if sg.QC == "" || sg.QV == "" {
			t.Error("per-row plan missing QC/QV")
		}
	}
}

func TestMarkerCollision(t *testing.T) {
	s := custSchema(t)
	c := cfd.MustParse("cust([CC='@'] -> [STR])", s)
	if _, err := ForCFD(c, "cust", "@"); err == nil {
		t.Error("marker collision should be rejected")
	}
	// A different marker succeeds.
	if _, err := ForCFD(c, "cust", "%"); err != nil {
		t.Errorf("alternate marker should work: %v", err)
	}
}

func TestNonStringSchemaRejected(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attribute{Name: "A", Kind: relation.KindInt},
		relation.Attribute{Name: "B", Kind: relation.KindString})
	c, err := cfd.New("x", s, []string{"A"}, []string{"B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ForCFD(c, "r", ""); err == nil {
		t.Error("int attribute should be rejected for SQL detection")
	}
}

func TestDetectCFDMatchesNativeOnExample(t *testing.T) {
	r := custData(t)
	// Corrupt: one variable violation (UK street) + one constant
	// violation (908 customer outside mh).
	r.Set(1, r.Schema().MustIndex("STR"), relation.String("WRONG"))
	r.Set(4, r.Schema().MustIndex("CT"), relation.String("nyc"))

	set, err := cfd.ParseSet(`
cfd phi1: cust([CC='44', ZIP] -> [STR])
cfd phi2: cust([CC='01', AC='908', PN] -> [CT='mh'])
`, r.Schema())
	if err != nil {
		t.Fatal(err)
	}

	rn := NewRunner()
	if _, err := rn.Load("cust", r); err != nil {
		t.Fatal(err)
	}
	sqlTIDs, err := rn.DetectSet(set, "cust")
	if err != nil {
		t.Fatal(err)
	}
	native, err := cfd.NewDetector(set).Detect(r)
	if err != nil {
		t.Fatal(err)
	}
	nativeTIDs := cfd.ViolatingTIDs(native)
	if !equalInts(sqlTIDs, nativeTIDs) {
		t.Fatalf("SQL %v != native %v", sqlTIDs, nativeTIDs)
	}
	// Must include the pair {0,1} and the constant violator {4}.
	if !equalInts(sqlTIDs, []int{0, 1, 4}) {
		t.Fatalf("tids = %v, want [0 1 4]", sqlTIDs)
	}
}

// TestSQLEquivalenceRandomized is the cross-check property: on random
// dirty data, the SQL detection path and the native detector report
// exactly the same violating tuple set, for both the merged-tableau and
// the per-row query plans.
func TestSQLEquivalenceRandomized(t *testing.T) {
	s := custSchema(t)
	rng := rand.New(rand.NewSource(42))
	ccs := []string{"44", "01", "07"}
	acs := []string{"131", "908", "212"}
	cities := []string{"edi", "mh", "nyc", "gla"}

	set, err := cfd.ParseSet(`
cfd p1: cust([CC='44', ZIP] -> [STR])
cfd p2: cust([CC, AC] -> [CT]) { ('44', '131' || 'edi'), ('01', '908' || 'mh'), (_, _ || _) }
cfd p3: cust([CC='01', AC='908', PN] -> [CT='mh'])
`, s)
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 10; trial++ {
		r := relation.New(s)
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			tup := strTuple(
				ccs[rng.Intn(len(ccs))],
				acs[rng.Intn(len(acs))],
				string(rune('0'+rng.Intn(5)))+"-phone",
				"name",
				"street "+string(rune('a'+rng.Intn(4))),
				cities[rng.Intn(len(cities))],
				"Z"+string(rune('0'+rng.Intn(3))),
			)
			// Sprinkle NULLs to exercise NULL semantics.
			if rng.Intn(20) == 0 {
				tup[rng.Intn(len(tup))] = relation.Null()
			}
			r.MustInsert(tup)
		}

		native, err := cfd.NewDetector(set).Detect(r)
		if err != nil {
			t.Fatal(err)
		}
		nativeTIDs := cfd.ViolatingTIDs(native)

		rn := NewRunner()
		if _, err := rn.Load("cust", r); err != nil {
			t.Fatal(err)
		}
		sqlTIDs, err := rn.DetectSet(set, "cust")
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(sqlTIDs, nativeTIDs) {
			t.Fatalf("trial %d: SQL %v != native %v", trial, sqlTIDs, nativeTIDs)
		}

		// Per-row plan agrees too.
		perRow := map[int]bool{}
		for _, c := range set.All() {
			gens, err := rn.InstallCFD(c, "cust")
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range gens {
				tids, err := rn.DetectCFDPerRow(g, "cust")
				if err != nil {
					t.Fatal(err)
				}
				for _, tid := range tids {
					perRow[tid] = true
				}
			}
		}
		perRowTIDs := sortedKeys(perRow)
		if !equalInts(perRowTIDs, nativeTIDs) {
			t.Fatalf("trial %d: per-row SQL %v != native %v", trial, perRowTIDs, nativeTIDs)
		}
	}
}

func TestDetectCINDMatchesNative(t *testing.T) {
	cdS, err := relation.StringSchema("CD", "album", "price", "genre")
	if err != nil {
		t.Fatal(err)
	}
	bookS, err := relation.StringSchema("book", "title", "price", "format")
	if err != nil {
		t.Fatal(err)
	}
	psi := cind.MustParse("cind psi: CD(album, price | genre='a-book') <= book(title, price | format='audio')", cdS, bookS)

	rng := rand.New(rand.NewSource(7))
	titles := []string{"dune", "blindsight", "emma", "ilium"}
	prices := []string{"10", "20"}
	for trial := 0; trial < 10; trial++ {
		cdRel := relation.New(cdS)
		bookRel := relation.New(bookS)
		for i := 0; i < 30+rng.Intn(40); i++ {
			genre := "music"
			if rng.Intn(2) == 0 {
				genre = "a-book"
			}
			cdRel.MustInsert(strTuple(titles[rng.Intn(len(titles))], prices[rng.Intn(2)], genre))
		}
		for i := 0; i < 20+rng.Intn(30); i++ {
			format := "audio"
			if rng.Intn(3) == 0 {
				format = "paper"
			}
			bookRel.MustInsert(strTuple(titles[rng.Intn(len(titles))], prices[rng.Intn(2)], format))
		}

		native, err := cind.Detect(cdRel, bookRel, psi)
		if err != nil {
			t.Fatal(err)
		}
		nativeTIDs := cind.ViolatingTIDs(native)

		rn := NewRunner()
		if _, err := rn.Load("CD", cdRel); err != nil {
			t.Fatal(err)
		}
		if _, err := rn.Load("book", bookRel); err != nil {
			t.Fatal(err)
		}
		sqlTIDs, err := rn.DetectCIND(psi, "CD", "book")
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(sqlTIDs, nativeTIDs) {
			t.Fatalf("trial %d: SQL %v != native %v", trial, sqlTIDs, nativeTIDs)
		}
	}
}

func TestMultiRHSNormalizedGeneration(t *testing.T) {
	s := custSchema(t)
	c := cfd.MustParse("cust([CC='01', AC='908', PN] -> [STR, CT='mh', ZIP])", s)
	gens, err := ForCFD(c, "cust", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 {
		t.Fatalf("normalized generation count = %d, want 3", len(gens))
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
