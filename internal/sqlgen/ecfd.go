package sqlgen

import (
	"fmt"
	"strings"

	"semandaq/internal/cfd"
	"semandaq/internal/relation"
)

// This file extends SQL detection generation to eCFDs (Bravo, Fan,
// Geerts, Ma, ICDE 2008 — "increasing the expressivity ... without extra
// complexity"). Disjunction patterns compile to IN lists and negation
// patterns to NOT IN; the query shape is otherwise the single-row
// constant/variable pair of the CFD case, demonstrating the paper's
// point that the added expressivity costs nothing structurally.

// GeneratedECFD holds the queries generated for one eCFD.
type GeneratedECFD struct {
	ECFD *cfd.ECFD
	// QC is per (row, constrained-RHS attribute): tuples in the row's
	// scope whose attribute fails the disjunction/negation.
	QC []string
	// QV is per (row, wildcard-RHS attribute): X-groups in the row's
	// scope where the attribute varies.
	QV []string
}

// patternSQL renders an ePattern condition over column col, or "" for
// the wildcard.
func ePatternSQL(col string, p cfd.EPattern) string {
	switch p.Op {
	case cfd.EAny:
		return ""
	case cfd.EIn:
		return fmt.Sprintf("%s IN (%s)", col, quoteList(p.Vals))
	default: // ENotIn: constants never match NULL, so exclude NULLs too.
		return fmt.Sprintf("(%s NOT IN (%s) AND %s IS NOT NULL)", col, quoteList(p.Vals), col)
	}
}

func quoteList(vals []relation.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = quoteSQL(v.Str())
	}
	return strings.Join(parts, ", ")
}

// negatedEPatternSQL renders the violation condition for a constrained
// RHS pattern: the attribute fails the pattern. NULL never matches a
// constrained pattern, so NULL counts as failing.
func negatedEPatternSQL(col string, p cfd.EPattern) string {
	switch p.Op {
	case cfd.EIn:
		return fmt.Sprintf("(%s NOT IN (%s) OR %s IS NULL)", col, quoteList(p.Vals), col)
	case cfd.ENotIn:
		return fmt.Sprintf("(%s IN (%s) OR %s IS NULL)", col, quoteList(p.Vals), col)
	default:
		return "" // wildcard RHS has no constant violations
	}
}

// ForECFD generates the detection queries for an eCFD over the
// TID-widened table relName. All referenced attributes must be strings
// (same restriction as CFD SQL generation).
func ForECFD(e *cfd.ECFD, relName string) (GeneratedECFD, error) {
	schema := e.Schema()
	lhs, rhs := e.LHS(), e.RHS()
	for _, pos := range append(append([]int(nil), lhs...), rhs...) {
		if schema.Attr(pos).Kind != relation.KindString {
			return GeneratedECFD{}, fmt.Errorf(
				"sqlgen: SQL detection requires string attributes; %s.%s is %v",
				schema.Name(), schema.Attr(pos).Name, schema.Attr(pos).Kind)
		}
	}
	g := GeneratedECFD{ECFD: e}
	for rowIdx := 0; rowIdx < e.Rows(); rowIdx++ {
		row := e.Row(rowIdx)
		var scope []string
		for i, attr := range lhs {
			if cond := ePatternSQL("t."+schema.Attr(attr).Name, row[i]); cond != "" {
				scope = append(scope, cond)
			}
		}
		scopeStr := strings.Join(scope, " AND ")
		for j, attr := range rhs {
			p := row[len(lhs)+j]
			col := "t." + schema.Attr(attr).Name
			if p.Op != cfd.EAny {
				qc := fmt.Sprintf("SELECT t.%s AS tid FROM %s t WHERE %s",
					TIDColumn, relName, andJoin(scopeStr, negatedEPatternSQL(col, p)))
				g.QC = append(g.QC, qc)
				continue
			}
			// Wildcard RHS: group by X inside the scope.
			selX := make([]string, len(lhs))
			groupX := make([]string, len(lhs))
			for i, a := range lhs {
				selX[i] = fmt.Sprintf("t.%s AS %s", schema.Attr(a).Name, schema.Attr(a).Name)
				groupX[i] = "t." + schema.Attr(a).Name
			}
			qv := fmt.Sprintf("SELECT %s FROM %s t", strings.Join(selX, ", "), relName)
			if scopeStr != "" {
				qv += " WHERE " + scopeStr
			}
			rhsName := schema.Attr(attr).Name
			qv += fmt.Sprintf(" GROUP BY %s HAVING COUNT(DISTINCT t.%s) > 1 OR (COUNT(t.%s) < COUNT(*) AND COUNT(DISTINCT t.%s) >= 1)",
				strings.Join(groupX, ", "), rhsName, rhsName, rhsName)
			g.QV = append(g.QV, qv)
		}
	}
	return g, nil
}

// DetectECFD runs the generated eCFD queries and returns the violating
// TIDs of the original relation, matching cfd.DetectECFD's tuple set.
func (rn *Runner) DetectECFD(e *cfd.ECFD, tableName string) ([]int, error) {
	orig, ok := rn.loaded[tableName]
	if !ok {
		return nil, fmt.Errorf("sqlgen: table %q not loaded", tableName)
	}
	g, err := ForECFD(e, tableName)
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	for _, qc := range g.QC {
		res, err := rn.DB.Query(qc)
		if err != nil {
			return nil, fmt.Errorf("sqlgen: running eCFD Q_C: %w", err)
		}
		for _, t := range res.Tuples() {
			seen[int(t[0].IntVal())] = true
		}
	}
	if len(g.QV) > 0 {
		pli := rn.indexes[tableName].Get(orig, e.LHS())
		for _, qv := range g.QV {
			res, err := rn.DB.Query(qv)
			if err != nil {
				return nil, fmt.Errorf("sqlgen: running eCFD Q_V: %w", err)
			}
			for _, gtup := range res.Tuples() {
				for _, tid := range pli.Lookup(gtup) {
					seen[tid] = true
				}
			}
		}
	}
	return sortedKeys(seen), nil
}
