// Package sqlgen translates CFDs and CINDs into SQL detection queries,
// following the technique of Fan, Geerts, Jia and Kementsietsidis
// (TODS 2008) that §5 of the tutorial credits Semandaq with ("automatic
// detections of cfd violations, based on efficient sql-based
// techniques").
//
// For a normalized CFD φ = (X → B, Tp) over relation R the generator
// emits:
//
//   - an encoding of the tableau Tp as a relation enc_φ(X..., B), with
//     the reserved marker (default "@") standing for the wildcard;
//   - Q_C, which joins R with enc_φ and returns the tuples matching some
//     row's LHS whose B disagrees with that row's constant; and
//   - Q_V, which groups the in-scope tuples by X and returns the groups
//     in which B takes more than one value.
//
// The crucial property (the headline experiment of TODS 2008 §8, E2 in
// this repository) is that the pair (Q_C, Q_V) is independent of the
// NUMBER of pattern rows — growing tableaux only grow the small encoded
// relation, not the query. The per-row variant (one pair of queries per
// pattern row, constants inlined) is also provided as the baseline.
//
// For CINDs the generator emits the NOT EXISTS anti-join form, which
// minidb decorrelates into a hash semi-join.
//
// SQL detection requires string-typed attributes (the tableau encoding
// stores patterns and the wildcard marker in the same column), matching
// the all-string schemas of the papers' datasets. The native detectors in
// the cfd and cind packages carry no such restriction and are used to
// cross-check the SQL path.
package sqlgen

import (
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/cfd"
	"semandaq/internal/cind"
	"semandaq/internal/minidb"
	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// TIDColumn is the synthetic tuple-identifier column added to relations
// when they are loaded for SQL detection, so that query results can be
// mapped back to relation TIDs.
const TIDColumn = "_tid"

// DefaultWildcardMarker encodes the wildcard in tableau relations.
const DefaultWildcardMarker = "@"

// GeneratedCFD holds the artifacts generated for one normalized CFD.
type GeneratedCFD struct {
	CFD     *cfd.CFD
	EncName string             // name of the tableau-encoding relation
	Enc     *relation.Relation // the encoded tableau
	QC      string             // constant-violation query (returns _tid)
	QV      string             // variable-violation query (returns the X attrs)
	// PerRow holds the naive baseline of TODS 2008 §8: the same query
	// pair generated once per pattern row, each joining a single-row
	// tableau relation. Detection then issues 2·|Tp| statements instead
	// of 2.
	PerRow []GeneratedCFD
}

// ForCFD generates detection SQL for every normalized (single-RHS) form
// of c. relName is the SQL-visible name of the data table, which must
// include the TIDColumn (use Runner.Load). The marker must not collide
// with any tableau constant; pass "" for the default.
func ForCFD(c *cfd.CFD, relName, marker string) ([]GeneratedCFD, error) {
	if marker == "" {
		marker = DefaultWildcardMarker
	}
	var out []GeneratedCFD
	for _, n := range c.Normalize() {
		g, err := forNormalized(n, relName, marker)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

func forNormalized(c *cfd.CFD, relName, marker string) (GeneratedCFD, error) {
	schema := c.Schema()
	for _, pos := range append(c.LHS(), c.RHS()...) {
		if schema.Attr(pos).Kind != relation.KindString {
			return GeneratedCFD{}, fmt.Errorf(
				"sqlgen: SQL detection requires string attributes; %s.%s is %v",
				schema.Name(), schema.Attr(pos).Name, schema.Attr(pos).Kind)
		}
	}
	lhsNames := c.LHSNames()
	rhsName := c.RHSNames()[0]
	tb := c.Tableau()

	// Validate the marker and encode the tableau.
	encAttrs := make([]relation.Attribute, 0, len(lhsNames)+1)
	for _, n := range lhsNames {
		encAttrs = append(encAttrs, relation.Attribute{Name: n, Kind: relation.KindString})
	}
	encAttrs = append(encAttrs, relation.Attribute{Name: rhsName, Kind: relation.KindString})
	encName := encTableName(c)
	encSchema, err := relation.NewSchema(encName, encAttrs...)
	if err != nil {
		return GeneratedCFD{}, err
	}
	enc := relation.New(encSchema)
	for _, row := range tb {
		t := make(relation.Tuple, len(row))
		for i, p := range row {
			if p.IsWild() {
				t[i] = relation.String(marker)
				continue
			}
			if p.Constant().Str() == marker {
				return GeneratedCFD{}, fmt.Errorf(
					"sqlgen: tableau constant %q collides with wildcard marker; choose another marker", marker)
			}
			t[i] = relation.String(p.Constant().Str())
		}
		enc.MustInsert(t)
	}

	q := quoteSQL
	// Match condition t[X] ≍ tp[X].
	var matchX []string
	for _, n := range lhsNames {
		matchX = append(matchX, fmt.Sprintf("(tp.%s = %s OR t.%s = tp.%s)", n, q(marker), n, n))
	}
	matchXStr := strings.Join(matchX, " AND ")

	// Q_C: in-scope tuples disagreeing with a constant RHS. The IS NULL
	// disjunct aligns SQL with the native detector: a NULL cell never
	// matches a constant pattern, so it violates.
	qc := fmt.Sprintf(
		"SELECT DISTINCT t.%s AS tid FROM %s t, %s tp WHERE %s AND tp.%s <> %s AND (t.%s <> tp.%s OR t.%s IS NULL)",
		TIDColumn, relName, encName, matchXStr, rhsName, q(marker), rhsName, rhsName, rhsName)

	// Q_V: X-groups within some wildcard-RHS row's scope where B varies.
	selX := make([]string, len(lhsNames))
	groupX := make([]string, len(lhsNames))
	for i, n := range lhsNames {
		selX[i] = fmt.Sprintf("t.%s AS %s", n, n)
		groupX[i] = "t." + n
	}
	// The HAVING clause flags a group when B takes two non-NULL values,
	// or mixes NULL with a non-NULL value (COUNT(B) skips NULLs, so
	// COUNT(B) < COUNT(*) detects the mix). All-NULL groups agree.
	havingVaries := fmt.Sprintf(
		"COUNT(DISTINCT t.%s) > 1 OR (COUNT(t.%s) < COUNT(*) AND COUNT(DISTINCT t.%s) >= 1)",
		rhsName, rhsName, rhsName)
	qv := fmt.Sprintf(
		"SELECT %s FROM %s t, %s tp WHERE %s AND tp.%s = %s GROUP BY %s HAVING %s",
		strings.Join(selX, ", "), relName, encName, matchXStr, rhsName, q(marker),
		strings.Join(groupX, ", "), havingVaries)

	g := GeneratedCFD{CFD: c, EncName: encName, Enc: enc, QC: qc, QV: qv}

	// Naive baseline: the same machinery once per pattern row.
	if len(tb) > 1 {
		for i, row := range tb {
			single, err := cfd.New(fmt.Sprintf("%s_row%d", c.Name(), i), c.Schema(),
				c.LHSNames(), c.RHSNames(), pattern.Tableau{row})
			if err != nil {
				return GeneratedCFD{}, err
			}
			sg, err := forNormalized(single, relName, marker)
			if err != nil {
				return GeneratedCFD{}, err
			}
			g.PerRow = append(g.PerRow, sg)
		}
	}
	return g, nil
}

func andJoin(a, b string) string {
	if a == "" {
		return b
	}
	return a + " AND " + b
}

var encCounter int

func encTableName(c *cfd.CFD) string {
	encCounter++
	name := c.Name()
	if name == "" {
		name = "cfd"
	}
	return fmt.Sprintf("enc_%s_%d", sanitize(name), encCounter)
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// quoteSQL renders a string constant as a SQL literal.
func quoteSQL(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// GeneratedCIND holds the anti-join query generated for a CIND.
type GeneratedCIND struct {
	CIND *cind.CIND
	Q    string // returns the _tid of left tuples lacking a witness
}

// ForCIND generates the NOT EXISTS detection query. leftName and
// rightName are the SQL-visible table names; leftName must carry the
// TIDColumn.
func ForCIND(c *cind.CIND, leftName, rightName string) (GeneratedCIND, error) {
	left, right := c.Left(), c.Right()
	for _, pos := range c.LHSCorr() {
		if left.Attr(pos).Kind != relation.KindString {
			return GeneratedCIND{}, fmt.Errorf("sqlgen: SQL detection requires string attributes; %s.%s",
				left.Name(), left.Attr(pos).Name)
		}
	}
	q := quoteSQL
	var outer []string
	lhsPatAttrs, lhsPats := c.LHSPattern()
	for i, pos := range lhsPatAttrs {
		if lhsPats[i].IsConst() {
			outer = append(outer, fmt.Sprintf("t.%s = %s", left.Attr(pos).Name, q(lhsPats[i].Constant().Str())))
		}
	}
	var inner []string
	lc, rc := c.LHSCorr(), c.RHSCorr()
	for i := range lc {
		inner = append(inner, fmt.Sprintf("s.%s = t.%s", right.Attr(rc[i]).Name, left.Attr(lc[i]).Name))
	}
	rhsPatAttrs, rhsPats := c.RHSPattern()
	for i, pos := range rhsPatAttrs {
		if rhsPats[i].IsConst() {
			inner = append(inner, fmt.Sprintf("s.%s = %s", right.Attr(pos).Name, q(rhsPats[i].Constant().Str())))
		}
	}
	sql := fmt.Sprintf("SELECT t.%s AS tid FROM %s t", TIDColumn, leftName)
	where := strings.Join(outer, " AND ")
	notExists := fmt.Sprintf("NOT EXISTS (SELECT s.%s FROM %s s WHERE %s)",
		right.Attr(rc[0]).Name, rightName, strings.Join(inner, " AND "))
	sql += " WHERE " + andJoin(where, notExists)
	return GeneratedCIND{CIND: c, Q: sql}, nil
}

// Runner owns a minidb instance, loads relations with TID columns,
// installs generated constraints and executes detection.
type Runner struct {
	DB     *minidb.DB
	marker string
	loaded map[string]*relation.Relation // SQL name -> original relation
	// indexes holds one PLI cache per loaded table (IndexCache evicts
	// entries for foreign relations, so tables must not share a cache);
	// group expansion after Q_V probes these instead of rebuilding a
	// hash index per detection call.
	indexes map[string]*relation.IndexCache
}

// NewRunner creates a Runner with the default wildcard marker.
func NewRunner() *Runner {
	return &Runner{
		DB:      minidb.New(),
		marker:  DefaultWildcardMarker,
		loaded:  map[string]*relation.Relation{},
		indexes: map[string]*relation.IndexCache{},
	}
}

// Load copies r into the runner's database under the given SQL name,
// adding the TIDColumn as the first column. It returns the widened
// relation.
func (rn *Runner) Load(name string, r *relation.Relation) (*relation.Relation, error) {
	attrs := []relation.Attribute{{Name: TIDColumn, Kind: relation.KindInt}}
	attrs = append(attrs, r.Schema().Attrs()...)
	schema, err := relation.NewSchema(name, attrs...)
	if err != nil {
		return nil, err
	}
	wide := relation.New(schema)
	for tid, t := range r.Tuples() {
		nt := make(relation.Tuple, 0, len(t)+1)
		nt = append(nt, relation.Int(int64(tid)))
		nt = append(nt, t...)
		if _, err := wide.Insert(nt); err != nil {
			return nil, err
		}
	}
	rn.DB.Register(name, wide)
	rn.loaded[name] = r
	rn.indexes[name] = relation.NewIndexCache()
	return wide, nil
}

// InstallCFD generates and registers detection artifacts for a CFD
// against the already-loaded table name.
func (rn *Runner) InstallCFD(c *cfd.CFD, tableName string) ([]GeneratedCFD, error) {
	if _, ok := rn.loaded[tableName]; !ok {
		return nil, fmt.Errorf("sqlgen: table %q not loaded", tableName)
	}
	gens, err := ForCFD(c, tableName, rn.marker)
	if err != nil {
		return nil, err
	}
	for _, g := range gens {
		rn.DB.Register(g.EncName, g.Enc)
		for _, sg := range g.PerRow {
			rn.DB.Register(sg.EncName, sg.Enc)
		}
	}
	return gens, nil
}

// DetectCFD runs the merged-tableau query pair of g and maps results back
// to TIDs of the original relation: constant violators from Q_C plus
// every member of each conflicting X-group from Q_V.
func (rn *Runner) DetectCFD(g GeneratedCFD, tableName string) ([]int, error) {
	seen := map[int]bool{}
	qcRes, err := rn.DB.Query(g.QC)
	if err != nil {
		return nil, fmt.Errorf("sqlgen: running Q_C: %w", err)
	}
	for _, t := range qcRes.Tuples() {
		seen[int(t[0].IntVal())] = true
	}
	qvRes, err := rn.DB.Query(g.QV)
	if err != nil {
		return nil, fmt.Errorf("sqlgen: running Q_V: %w", err)
	}
	if qvRes.Len() > 0 {
		tids, err := rn.expandGroups(g.CFD, qvRes, tableName)
		if err != nil {
			return nil, err
		}
		for _, tid := range tids {
			seen[tid] = true
		}
	}
	return sortedKeys(seen), nil
}

// DetectCFDPerRow runs the naive per-pattern-row baseline: the full
// query pair once for every tableau row. When the tableau has a single
// row the baseline coincides with the merged plan.
func (rn *Runner) DetectCFDPerRow(g GeneratedCFD, tableName string) ([]int, error) {
	if len(g.PerRow) == 0 {
		return rn.DetectCFD(g, tableName)
	}
	seen := map[int]bool{}
	for _, sg := range g.PerRow {
		tids, err := rn.DetectCFD(sg, tableName)
		if err != nil {
			return nil, err
		}
		for _, tid := range tids {
			seen[tid] = true
		}
	}
	return sortedKeys(seen), nil
}

// expandGroups maps Q_V's violating X-groups back to the member TIDs by
// probing the original relation's cached X partition with the group
// tuples' values (equality joins in SQL would drop NULL-keyed groups,
// which the native detector legitimately forms when wildcards match
// NULLs).
func (rn *Runner) expandGroups(c *cfd.CFD, groups *relation.Relation, tableName string) ([]int, error) {
	orig, ok := rn.loaded[tableName]
	if !ok {
		return nil, fmt.Errorf("sqlgen: table %q not loaded", tableName)
	}
	pli := rn.indexes[tableName].Get(orig, c.LHS())
	var out []int
	for _, g := range groups.Tuples() {
		out = append(out, pli.Lookup(g)...)
	}
	return out, nil
}

// DetectSet installs and runs detection for a whole CFD set, returning
// the union of violating TIDs — the SQL counterpart of
// cfd.ViolatingTIDs(Detector.Detect(...)).
func (rn *Runner) DetectSet(set *cfd.Set, tableName string) ([]int, error) {
	seen := map[int]bool{}
	for _, c := range set.All() {
		gens, err := rn.InstallCFD(c, tableName)
		if err != nil {
			return nil, err
		}
		for _, g := range gens {
			tids, err := rn.DetectCFD(g, tableName)
			if err != nil {
				return nil, err
			}
			for _, tid := range tids {
				seen[tid] = true
			}
		}
	}
	return sortedKeys(seen), nil
}

// DetectCIND generates and runs the anti-join query for a CIND over two
// loaded tables, returning violating left-relation TIDs.
func (rn *Runner) DetectCIND(c *cind.CIND, leftName, rightName string) ([]int, error) {
	g, err := ForCIND(c, leftName, rightName)
	if err != nil {
		return nil, err
	}
	res, err := rn.DB.Query(g.Q)
	if err != nil {
		return nil, fmt.Errorf("sqlgen: running CIND query: %w", err)
	}
	out := make([]int, 0, res.Len())
	for _, t := range res.Tuples() {
		out = append(out, int(t[0].IntVal()))
	}
	seen := map[int]bool{}
	for _, tid := range out {
		seen[tid] = true
	}
	return sortedKeys(seen), nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
