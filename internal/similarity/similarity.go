// Package similarity provides the string similarity measures used by the
// record-matching module (relative candidate keys compare attributes "with
// a similarity operator ≈", tutorial §4) and by the repair cost model of
// Cong et al. (VLDB 2007), which weighs attribute updates by string
// distance.
//
// Every measure is normalized to [0, 1], where 1 means identical. All
// measures are symmetric.
package similarity

import (
	"math"
	"strings"
	"unicode"
)

// Measure scores the similarity of two strings in [0, 1].
type Measure interface {
	// Name identifies the measure (for constraint syntax and reports).
	Name() string
	// Sim returns the normalized similarity of a and b.
	Sim(a, b string) float64
}

// Func adapts an ordinary function to a named Measure.
type Func struct {
	MeasureName string
	F           func(a, b string) float64
}

// Name implements Measure.
func (f Func) Name() string { return f.MeasureName }

// Sim implements Measure.
func (f Func) Sim(a, b string) float64 { return f.F(a, b) }

// Levenshtein computes the edit distance between a and b: the minimum
// number of single-rune insertions, deletions and substitutions.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// DamerauLevenshtein additionally counts adjacent transpositions as a
// single edit (the classic typo model used when injecting noise).
func DamerauLevenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	n, m := len(ra), len(rb)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	d := make([][]int, n+1)
	for i := range d {
		d[i] = make([]int, m+1)
		d[i][0] = i
	}
	for j := 0; j <= m; j++ {
		d[0][j] = j
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d[i][j] = min3(d[i-1][j]+1, d[i][j-1]+1, d[i-1][j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := d[i-2][j-2] + 1; t < d[i][j] {
					d[i][j] = t
				}
			}
		}
	}
	return d[n][m]
}

// LevenshteinSim is 1 - dist/maxLen, the normalized form used in the
// repair cost model.
func LevenshteinSim(a, b string) float64 {
	if a == b {
		return 1
	}
	maxLen := max(len([]rune(a)), len([]rune(b)))
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// Jaro computes the Jaro similarity.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, la)
	matchedB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max(0, i-window)
		hi := min(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchedB[j] || ra[i] != rb[j] {
				continue
			}
			matchedA[i], matchedB[j] = true, true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a common prefix
// (up to 4 runes), with the standard scaling factor p = 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// QGramJaccard computes the Jaccard coefficient of the q-gram multiset
// signatures of a and b (as sets). Strings shorter than q are padded
// conceptually by comparing them whole.
func QGramJaccard(q int) func(a, b string) float64 {
	return func(a, b string) float64 {
		if a == b {
			return 1
		}
		ga, gb := qgrams(a, q), qgrams(b, q)
		if len(ga) == 0 && len(gb) == 0 {
			return 1
		}
		if len(ga) == 0 || len(gb) == 0 {
			return 0
		}
		inter := 0
		for g := range ga {
			if _, ok := gb[g]; ok {
				inter++
			}
		}
		union := len(ga) + len(gb) - inter
		return float64(inter) / float64(union)
	}
}

func qgrams(s string, q int) map[string]struct{} {
	out := make(map[string]struct{})
	r := []rune(s)
	if len(r) == 0 {
		return out
	}
	if len(r) < q {
		out[string(r)] = struct{}{}
		return out
	}
	for i := 0; i+q <= len(r); i++ {
		out[string(r[i:i+q])] = struct{}{}
	}
	return out
}

// TokenCosine computes the cosine similarity of whitespace-token sets
// (binary weights). Useful for multi-word address fields.
func TokenCosine(a, b string) float64 {
	ta, tb := tokenSet(a), tokenSet(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	for tok := range ta {
		if _, ok := tb[tok]; ok {
			inter++
		}
	}
	// sqrt of the product (not product of sqrts) so that equal-size sets
	// with full overlap score exactly 1.
	sim := float64(inter) / math.Sqrt(float64(len(ta))*float64(len(tb)))
	return min(sim, 1)
}

func tokenSet(s string) map[string]struct{} {
	out := make(map[string]struct{})
	for _, tok := range strings.Fields(strings.ToLower(s)) {
		out[tok] = struct{}{}
	}
	return out
}

// Soundex computes the American Soundex code of s (letter + 3 digits).
// Non-ASCII-letter input contributes nothing.
func Soundex(s string) string {
	code := map[rune]byte{
		'b': '1', 'f': '1', 'p': '1', 'v': '1',
		'c': '2', 'g': '2', 'j': '2', 'k': '2', 'q': '2', 's': '2', 'x': '2', 'z': '2',
		'd': '3', 't': '3',
		'l': '4',
		'm': '5', 'n': '5',
		'r': '6',
	}
	var letters []rune
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) && r < 128 {
			letters = append(letters, r)
		}
	}
	if len(letters) == 0 {
		return ""
	}
	out := []byte{byte(unicode.ToUpper(letters[0]))}
	prev := code[letters[0]]
	for _, r := range letters[1:] {
		c := code[r]
		if c == 0 {
			// Vowels (and h, w, y) reset the adjacency rule, except h/w
			// which are transparent in standard Soundex.
			if r != 'h' && r != 'w' {
				prev = 0
			}
			continue
		}
		if c != prev {
			out = append(out, c)
			if len(out) == 4 {
				break
			}
		}
		prev = c
	}
	for len(out) < 4 {
		out = append(out, '0')
	}
	return string(out)
}

// SoundexSim is 1 if the Soundex codes agree, else 0.
func SoundexSim(a, b string) float64 {
	if Soundex(a) == Soundex(b) {
		return 1
	}
	return 0
}

// Registry of named measures usable in textual constraint syntax.
var registry = map[string]Measure{
	"levenshtein": Func{"levenshtein", LevenshteinSim},
	"jaro":        Func{"jaro", Jaro},
	"jarowinkler": Func{"jarowinkler", JaroWinkler},
	"qgram":       Func{"qgram", QGramJaccard(2)},
	"cosine":      Func{"cosine", TokenCosine},
	"soundex":     Func{"soundex", SoundexSim},
	"equal": Func{"equal", func(a, b string) float64 {
		if a == b {
			return 1
		}
		return 0
	}},
}

// Lookup returns the named measure, or false if unknown. Names are
// case-insensitive.
func Lookup(name string) (Measure, bool) {
	m, ok := registry[strings.ToLower(name)]
	return m, ok
}

// Names returns the registered measure names (unsorted).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}

func min3(a, b, c int) int { return min(a, min(b, c)) }
