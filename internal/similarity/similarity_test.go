package similarity

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"mtn ave", "mountain ave", 5},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauTransposition(t *testing.T) {
	if got := DamerauLevenshtein("ab", "ba"); got != 1 {
		t.Errorf("Damerau(ab, ba) = %d, want 1", got)
	}
	if got := Levenshtein("ab", "ba"); got != 2 {
		t.Errorf("Levenshtein(ab, ba) = %d, want 2", got)
	}
	if got := DamerauLevenshtein("smith", "smiht"); got != 1 {
		t.Errorf("Damerau(smith, smiht) = %d, want 1", got)
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	// Classic reference pairs (values from Winkler's papers, 3 decimals).
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.961},
		{"DIXON", "DICKSONX", 0.813},
		{"JELLYFISH", "SMELLYFISH", 0.896},
	}
	for _, c := range cases {
		got := JaroWinkler(c.a, c.b)
		if got < c.want-0.002 || got > c.want+0.002 {
			t.Errorf("JaroWinkler(%q, %q) = %.4f, want ≈%.3f", c.a, c.b, got, c.want)
		}
	}
}

func TestSoundex(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"},
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Soundex(c.in); got != c.want {
			t.Errorf("Soundex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestQGramAndCosine(t *testing.T) {
	qg := QGramJaccard(2)
	if qg("night", "night") != 1 {
		t.Error("identical strings must have qgram sim 1")
	}
	if s := qg("night", "nacht"); s <= 0 || s >= 1 {
		t.Errorf("qgram(night, nacht) = %f, want in (0,1)", s)
	}
	if s := qg("abc", "xyz"); s != 0 {
		t.Errorf("qgram of disjoint strings = %f, want 0", s)
	}
	if TokenCosine("10 main street", "main street 10") != 1 {
		t.Error("token cosine ignores order; permuted tokens must score 1")
	}
	if s := TokenCosine("10 main street", "10 oak avenue"); s <= 0 || s >= 1 {
		t.Errorf("cosine partial overlap = %f, want in (0,1)", s)
	}
}

func randString(r *rand.Rand) string {
	b := make([]byte, r.Intn(10))
	for i := range b {
		b[i] = byte('a' + r.Intn(5))
	}
	return string(b)
}

type strPair struct{ A, B string }

func (strPair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(strPair{A: randString(r), B: randString(r)})
}

func TestMeasureProperties(t *testing.T) {
	// Every registered measure: symmetric, reflexive with score 1, bounded.
	for _, name := range Names() {
		m, ok := Lookup(name)
		if !ok {
			t.Fatalf("registered measure %q not found", name)
		}
		prop := func(p strPair) bool {
			ab, ba := m.Sim(p.A, p.B), m.Sim(p.B, p.A)
			if ab != ba {
				return false
			}
			if ab < 0 || ab > 1 {
				return false
			}
			return m.Sim(p.A, p.A) == 1
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("measure %s: %v", name, err)
		}
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	prop := func(p strPair, c strPair) bool {
		x, y, z := p.A, p.B, c.A
		return Levenshtein(x, z) <= Levenshtein(x, y)+Levenshtein(y, z)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinMetricAxioms(t *testing.T) {
	prop := func(p strPair) bool {
		d := Levenshtein(p.A, p.B)
		if (d == 0) != (p.A == p.B) {
			return false
		}
		return d == Levenshtein(p.B, p.A)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDamerauNeverExceedsLevenshtein(t *testing.T) {
	prop := func(p strPair) bool {
		return DamerauLevenshtein(p.A, p.B) <= Levenshtein(p.A, p.B)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("no-such-measure"); ok {
		t.Error("Lookup of unknown measure should fail")
	}
	if m, ok := Lookup("JaroWinkler"); !ok || m.Name() != "jarowinkler" {
		t.Error("Lookup should be case-insensitive")
	}
}

func TestEqualMeasure(t *testing.T) {
	m, _ := Lookup("equal")
	if m.Sim("a", "a") != 1 || m.Sim("a", "b") != 0 {
		t.Error("equal measure must be exact")
	}
}
