package repair

import (
	"fmt"
	"sort"

	"semandaq/internal/cfd"
	"semandaq/internal/relation"
)

// Inc runs the IncRepair algorithm of Cong et al. (VLDB 2007): given a
// relation whose prefix (every tuple NOT listed in deltaTIDs) already
// satisfies the CFD set, it repairs only the delta tuples so that the
// whole relation satisfies the set. The base tuples are treated as
// authoritative and are never modified — the defining property that
// makes IncRepair cheap for small deltas (experiment E6). The input
// relation is not modified; the result holds a repaired copy. Service
// paths that own their relation use IncInPlace and skip the copy.
//
// Resolution rules per violation kind:
//
//   - a variable violation in a group containing base tuples binds the
//     delta cells to the base group's value;
//   - a variable violation among delta tuples only is resolved like
//     BatchRepair (class merge, cost-minimizing value);
//   - a constant violation on a delta tuple binds the cell to the
//     required constant, or moves the tuple out of the pattern scope
//     when the cell is already bound otherwise.
func Inc(r *relation.Relation, set *cfd.Set, deltaTIDs []int, opts Options) (*Result, error) {
	return IncInPlace(r.Clone(), set, deltaTIDs, opts, nil)
}

// IncInPlace is IncRepair without the defensive copy: it writes repaired
// values directly into the delta cells of r (base tuples are still never
// modified) and runs its per-pass incremental detection on the caller's
// PLI cache, so a session's partitions survive the append→repair cycle —
// stale-only-by-appends indexes are advanced (IndexCache.GetDelta), not
// rebuilt. Result.Repaired is r itself. A nil cache uses a private one.
//
// On error the delta cells may hold partially repaired values; callers
// that appended the delta roll back with Relation.Truncate (as
// engine.Session.Append does).
func IncInPlace(r *relation.Relation, set *cfd.Set, deltaTIDs []int, opts Options, cache *relation.IndexCache) (*Result, error) {
	if err := checkDelta(r, set, deltaTIDs); err != nil {
		return nil, err
	}
	if cache == nil {
		cache = relation.NewIndexCache()
	}
	// Snapshot the delta tuples' original values: only delta cells are
	// ever written, so this is all the repair needs for cost computation
	// and the change list.
	snap := make(map[int]relation.Tuple, len(deltaTIDs))
	for _, tid := range deltaTIDs {
		if _, dup := snap[tid]; !dup {
			snap[tid] = r.Tuple(tid).Clone()
		}
	}
	orig := func(tid, attr int) relation.Value {
		if t, ok := snap[tid]; ok {
			return t[attr]
		}
		return r.Get(tid, attr)
	}
	return incRun(r, orig, set, deltaTIDs, opts, cache)
}

func checkDelta(r *relation.Relation, set *cfd.Set, deltaTIDs []int) error {
	if !r.Schema().Equal(set.Schema()) {
		return fmt.Errorf("repair: relation %s does not match constraint schema %s",
			r.Schema().Name(), set.Schema().Name())
	}
	for _, tid := range deltaTIDs {
		if tid < 0 || tid >= r.Len() {
			return fmt.Errorf("repair: delta TID %d out of range", tid)
		}
	}
	return nil
}

// incRun is the shared IncRepair loop: work is mutated in place (delta
// cells only), orig supplies the pre-repair values of every cell, and
// cache serves the per-CFD X-partitions across passes.
func incRun(work *relation.Relation, orig func(tid, attr int) relation.Value, set *cfd.Set, deltaTIDs []int, opts Options, cache *relation.IndexCache) (*Result, error) {
	opts = opts.withDefaults()
	isDelta := make(map[int]bool, len(deltaTIDs))
	for _, tid := range deltaTIDs {
		isDelta[tid] = true
	}

	arity := work.Schema().Arity()

	// Cell classes restricted to delta cells; base cells are constants.
	// We key the union-find by delta cell ids mapped densely.
	deltaIdx := make(map[int]int, len(isDelta)*arity) // cellID -> dense id
	var denseCells []int
	cellID := func(tid, attr int) int { return tid*arity + attr }
	for tid := range isDelta {
		for a := 0; a < arity; a++ {
			deltaIdx[cellID(tid, a)] = len(denseCells)
			denseCells = append(denseCells, cellID(tid, a))
		}
	}
	uf := newUnionFind(len(denseCells))
	targets := make(map[int]cellTarget)
	freshCounter := 0

	setConst := func(dense int, v relation.Value, kind relation.Kind) bool {
		root := uf.find(dense)
		t := targets[root]
		switch t.kind {
		case targetUnset:
			targets[root] = cellTarget{targetConst, v}
			return true
		case targetConst:
			if !t.value.Identical(v) {
				freshCounter++
				targets[root] = cellTarget{targetFresh, freshValue(kind, freshCounter)}
				return true
			}
			return false
		default:
			return false
		}
	}

	// materialize writes every class value into work. The base-tuple
	// guard is the algorithm's contract made explicit: IncRepair may
	// write delta cells ONLY — especially load-bearing now that work can
	// be a session's live relation (IncInPlace), where a stray base
	// write would silently corrupt data no rollback removes.
	materialize := func() error {
		members := make(map[int][]int)
		for dense := range denseCells {
			members[uf.find(dense)] = append(members[uf.find(dense)], dense)
		}
		for root, cells := range members {
			t := targets[root]
			var v relation.Value
			switch {
			case t.kind != targetUnset:
				v = t.value
			default:
				cellIDs := make([]int, len(cells))
				for i, dense := range cells {
					cellIDs[i] = denseCells[dense]
				}
				v = classValueBy(orig, cellIDs, arity, opts)
			}
			for _, dense := range cells {
				c := denseCells[dense]
				if !isDelta[c/arity] {
					return fmt.Errorf("repair: internal: IncRepair attempted to modify base tuple %d", c/arity)
				}
				work.Set(c/arity, c%arity, v)
			}
		}
		return nil
	}

	// One index cache across all passes: materialize only rewrites delta
	// cells whose value actually changes, so X-partitions over columns the
	// repair never touches stay fresh — and when the delta was appended to
	// a warm session, GetDelta absorbs it into the existing partitions
	// instead of rebuilding them. Even a partition keyed on a column the
	// repair DOES write (chained constraints, where one rule's RHS is
	// another's LHS) survives: each Set lands in the column's patch
	// journal and the next GetDelta drains it into the cached PLI as a
	// per-cell group move (PLI.Patch), so multi-pass repairs never
	// counting-sort anything from scratch.
	passes := 0
	for ; passes < opts.MaxPasses; passes++ {
		if err := materialize(); err != nil {
			return nil, err
		}
		// Only violations touching delta tuples matter: the base is
		// consistent by precondition and never modified.
		var vs []cfd.Violation
		for _, c := range set.All() {
			pli := cache.GetDelta(work, c.LHS())
			vs = append(vs, cfd.IncDetect(work, c, pli, deltaTIDs)...)
		}
		if len(vs) == 0 {
			return finishDelta(work, orig, deltaTIDs, passes+1, opts), nil
		}
		progress := false
		for _, v := range vs {
			switch v.Kind {
			case cfd.VarViolation:
				// Split the group into base and delta members.
				var base []int
				var delta []int
				for _, tid := range v.TIDs {
					if isDelta[tid] {
						delta = append(delta, tid)
					} else {
						base = append(base, tid)
					}
				}
				if len(base) > 0 {
					// The base members of a group must already agree — if
					// they don't, the precondition (clean base) is broken
					// and IncRepair cannot proceed without editing it.
					bv := work.Get(base[0], v.Attr)
					for _, tid := range base[1:] {
						if !work.Get(tid, v.Attr).Identical(bv) {
							return nil, fmt.Errorf(
								"repair: base tuples %v disagree on %s under %s — the base must satisfy the set before IncRepair",
								base, work.Schema().Attr(v.Attr).Name, v.CFD.Name())
						}
					}
					// Bind every delta cell to the base value.
					for _, tid := range delta {
						dense := deltaIdx[cellID(tid, v.Attr)]
						if setConst(dense, bv, work.Schema().Attr(v.Attr).Kind) {
							progress = true
						}
					}
					continue
				}
				// Delta-only group: merge classes.
				first := deltaIdx[cellID(delta[0], v.Attr)]
				for _, tid := range delta[1:] {
					dense := deltaIdx[cellID(tid, v.Attr)]
					if !uf.sameSet(first, dense) {
						progress = true
					}
					root1, root2 := uf.find(first), uf.find(dense)
					t1, t2 := targets[root1], targets[root2]
					root := uf.union(root1, root2)
					delete(targets, root1)
					delete(targets, root2)
					switch {
					case t1.kind == targetFresh || t2.kind == targetFresh ||
						(t1.kind == targetConst && t2.kind == targetConst && !t1.value.Identical(t2.value)):
						freshCounter++
						targets[root] = cellTarget{targetFresh, freshValue(work.Schema().Attr(v.Attr).Kind, freshCounter)}
					case t1.kind == targetConst:
						targets[root] = t1
					case t2.kind == targetConst:
						targets[root] = t2
					}
				}
			case cfd.ConstViolation:
				tid := v.TIDs[0]
				if !isDelta[tid] {
					return nil, fmt.Errorf("repair: base tuple %d violates %s — the base must satisfy the set before IncRepair", tid, v.CFD.Name())
				}
				c := v.CFD
				rhsIdx := indexOf(c.RHS(), v.Attr)
				pat := c.RowRHS(v.Row)[rhsIdx]
				dense := deltaIdx[cellID(tid, v.Attr)]
				root := uf.find(dense)
				t := targets[root]
				if t.kind == targetUnset || (t.kind == targetConst && t.value.Identical(pat.Constant())) {
					if setConst(dense, pat.Constant(), work.Schema().Attr(v.Attr).Kind) {
						progress = true
					}
					continue
				}
				// Move out of scope via a constant LHS pattern.
				for i, lhsAttr := range c.LHS() {
					lp := c.RowLHS(v.Row)[i]
					if !lp.IsConst() {
						continue
					}
					ldense := deltaIdx[cellID(tid, lhsAttr)]
					lroot := uf.find(ldense)
					lt := targets[lroot]
					if lt.kind == targetFresh || (lt.kind == targetConst && lt.value.Identical(lp.Constant())) {
						continue
					}
					freshCounter++
					targets[lroot] = cellTarget{targetFresh, freshValue(work.Schema().Attr(lhsAttr).Kind, freshCounter)}
					progress = true
					break
				}
			}
		}
		if !progress {
			return nil, fmt.Errorf("repair: IncRepair made no progress after %d passes", passes+1)
		}
	}
	return nil, fmt.Errorf("repair: IncRepair pass limit %d exceeded", opts.MaxPasses)
}

// finishDelta computes the change list and cost by scanning the delta
// cells only — IncRepair never modifies base cells, so the scan is
// exhaustive. Changes come out sorted by (TID, Attr) like finish's.
func finishDelta(work *relation.Relation, orig func(tid, attr int) relation.Value, deltaTIDs []int, passes int, opts Options) *Result {
	arity := work.Schema().Arity()
	tids := append([]int(nil), deltaTIDs...)
	sort.Ints(tids)
	var changes []Change
	cost := 0.0
	prev := -1
	for _, tid := range tids {
		if tid == prev {
			continue
		}
		prev = tid
		for attr := 0; attr < arity; attr++ {
			from, to := orig(tid, attr), work.Get(tid, attr)
			if from.Identical(to) {
				continue
			}
			changes = append(changes, Change{TID: tid, Attr: attr, From: from, To: to})
			cost += opts.Weights(tid, attr) * valueDistance(from, to)
		}
	}
	return &Result{Repaired: work, Changes: changes, Cost: cost, Passes: passes}
}

// AppendAndRepair is the one-shot IncRepair entry point: append the
// delta tuples to a (copy of the) clean base relation and repair just
// the delta. It returns the repaired combined relation and the result;
// base is not modified. Long-lived sessions append into their own
// relation and call IncInPlace instead, which is what keeps their PLI
// cache warm (engine.Session.Append).
func AppendAndRepair(base *relation.Relation, delta []relation.Tuple, set *cfd.Set, opts Options) (*Result, error) {
	combined := base.Clone()
	deltaTIDs := make([]int, 0, len(delta))
	for _, t := range delta {
		tid, err := combined.Insert(t.Clone())
		if err != nil {
			return nil, err
		}
		deltaTIDs = append(deltaTIDs, tid)
	}
	return IncInPlace(combined, set, deltaTIDs, opts, nil)
}

// ChangedTIDs extracts the sorted distinct TIDs touched by a result.
func ChangedTIDs(res *Result) []int {
	seen := map[int]bool{}
	for _, ch := range res.Changes {
		seen[ch.TID] = true
	}
	out := make([]int, 0, len(seen))
	for tid := range seen {
		out = append(out, tid)
	}
	sort.Ints(out)
	return out
}
