package repair

import (
	"math/rand"
	"strings"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/relation"
)

func custSchema(t *testing.T) *relation.Schema {
	t.Helper()
	s, err := relation.StringSchema("cust", "CC", "AC", "PN", "NM", "STR", "CT", "ZIP")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func strTuple(vals ...string) relation.Tuple {
	tp := make(relation.Tuple, len(vals))
	for i, v := range vals {
		tp[i] = relation.String(v)
	}
	return tp
}

func custData(t *testing.T) *relation.Relation {
	t.Helper()
	r := relation.New(custSchema(t))
	r.MustInsert(strTuple("44", "131", "1111111", "mike", "mayfield rd", "edi", "EH4 8LE"))
	r.MustInsert(strTuple("44", "131", "2222222", "rick", "mayfield rd", "edi", "EH4 8LE"))
	r.MustInsert(strTuple("44", "131", "3333333", "anna", "crichton st", "edi", "EH8 9LE"))
	r.MustInsert(strTuple("01", "908", "4444444", "joe", "mtn ave", "mh", "07974"))
	r.MustInsert(strTuple("01", "908", "5555555", "ben", "high st", "mh", "07974"))
	r.MustInsert(strTuple("01", "212", "6666666", "kim", "broadway", "nyc", "10012"))
	return r
}

func tutorialSet(t *testing.T, s *relation.Schema) *cfd.Set {
	t.Helper()
	set, err := cfd.ParseSet(`
cfd phi1: cust([CC='44', ZIP] -> [STR])
cfd phi2: cust([CC='01', AC='908', PN] -> [CT='mh'])
cfd phi3: cust([CC, AC] -> [CT]) { ('44', '131' || 'edi'), ('01', '908' || 'mh') }
`, s)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestBatchCleanDataUntouched(t *testing.T) {
	r := custData(t)
	set := tutorialSet(t, r.Schema())
	res, err := Batch(r, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 0 || res.Cost != 0 {
		t.Fatalf("clean data repaired: %v (cost %f)", res.Changes, res.Cost)
	}
	if err := Verify(res, set); err != nil {
		t.Fatal(err)
	}
}

func TestBatchRepairsVariableViolation(t *testing.T) {
	r := custData(t)
	set := tutorialSet(t, r.Schema())
	str := r.Schema().MustIndex("STR")
	// Corrupt one of the two agreeing UK streets; the majority/medoid
	// choice should restore the original value.
	r.Set(1, str, relation.String("maifield rd")) // small typo
	res, err := Batch(r, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res, set); err != nil {
		t.Fatal(err)
	}
	got := res.Repaired.Get(1, str)
	if got.Str() != "mayfield rd" {
		t.Errorf("repaired STR = %q, want restoration to mayfield rd", got.Str())
	}
	if len(res.Changes) != 1 {
		t.Errorf("changes = %v, want exactly 1", res.Changes)
	}
	// The input must not be modified.
	if r.Get(1, str).Str() != "maifield rd" {
		t.Error("Batch modified its input")
	}
}

func TestBatchRepairsConstantViolation(t *testing.T) {
	r := custData(t)
	set := tutorialSet(t, r.Schema())
	ct := r.Schema().MustIndex("CT")
	r.Set(4, ct, relation.String("nyc"))
	res, err := Batch(r, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res, set); err != nil {
		t.Fatal(err)
	}
	if got := res.Repaired.Get(4, ct); got.Str() != "mh" {
		t.Errorf("repaired CT = %q, want mh", got.Str())
	}
}

func TestBatchWeightsSteerValueChoice(t *testing.T) {
	s := custSchema(t)
	set, err := cfd.ParseSet("cfd phi: cust([CC='44', ZIP] -> [STR])", s)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	r.MustInsert(strTuple("44", "131", "1", "a", "street one", "edi", "Z"))
	r.MustInsert(strTuple("44", "131", "2", "b", "street two", "edi", "Z"))
	// With a high weight on tuple 1's STR, the class value must follow
	// tuple 1 even though both candidates are otherwise symmetric.
	str := s.MustIndex("STR")
	weights := func(tid, attr int) float64 {
		if tid == 1 && attr == str {
			return 100
		}
		return 1
	}
	res, err := Batch(r, set, Options{Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Repaired.Get(0, str); got.Str() != "street two" {
		t.Errorf("weighted repair chose %q, want street two", got.Str())
	}
	// And symmetrically.
	weights2 := func(tid, attr int) float64 {
		if tid == 0 && attr == str {
			return 100
		}
		return 1
	}
	res2, err := Batch(r, set, Options{Weights: weights2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Repaired.Get(1, str); got.Str() != "street one" {
		t.Errorf("weighted repair chose %q, want street one", got.Str())
	}
}

func TestBatchConflictingConstantsMovesOutOfScope(t *testing.T) {
	s := custSchema(t)
	// Two rules force different cities for the same tuple; the repair
	// must move the tuple out of one scope (fresh value on CC or ZIP)
	// rather than loop.
	set, err := cfd.ParseSet(`
cust([CC='44'] -> [CT='edi'])
cust([ZIP='Z1'] -> [CT='mh'])
`, s)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	r.MustInsert(strTuple("44", "131", "1", "a", "s", "gla", "Z1"))
	res, err := Batch(r, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res, set); err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) == 0 {
		t.Fatal("expected changes")
	}
}

func TestBatchCascadingRepair(t *testing.T) {
	s := custSchema(t)
	// Repairing CT to 'edi' puts the tuple in the scope of the second
	// rule, which then forces AC; the loop must cascade to a fixpoint.
	set, err := cfd.ParseSet(`
cust([CC='44'] -> [CT='edi'])
cust([CT='edi'] -> [AC='131'])
`, s)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	r.MustInsert(strTuple("44", "999", "1", "a", "s", "gla", "Z"))
	res, err := Batch(r, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res, set); err != nil {
		t.Fatal(err)
	}
	ct, ac := s.MustIndex("CT"), s.MustIndex("AC")
	if res.Repaired.Get(0, ct).Str() != "edi" || res.Repaired.Get(0, ac).Str() != "131" {
		t.Errorf("cascade result: CT=%v AC=%v", res.Repaired.Get(0, ct), res.Repaired.Get(0, ac))
	}
	if res.Passes < 2 {
		t.Errorf("expected at least 2 passes, got %d", res.Passes)
	}
}

// TestBatchPropertyAlwaysSatisfies is the core property: on randomized
// dirty data over a satisfiable CFD set, Batch always produces a relation
// with zero violations, never touches the input, and reports a cost
// consistent with its change list.
func TestBatchPropertyAlwaysSatisfies(t *testing.T) {
	s := custSchema(t)
	set := tutorialSet(t, s)
	rng := rand.New(rand.NewSource(99))
	cities := []string{"edi", "mh", "nyc", "gla"}
	zips := []string{"Z1", "Z2", "Z3"}
	streets := []string{"high st", "main st", "mayfield rd"}

	for trial := 0; trial < 15; trial++ {
		r := relation.New(s)
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			cc, ac := "44", "131"
			if rng.Intn(2) == 0 {
				cc, ac = "01", "908"
			}
			r.MustInsert(strTuple(cc, ac,
				"pn"+string(rune('0'+rng.Intn(10))),
				"name",
				streets[rng.Intn(len(streets))],
				cities[rng.Intn(len(cities))],
				zips[rng.Intn(len(zips))]))
		}
		res, err := Batch(r, set, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Verify(res, set); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Cost consistency: cost > 0 iff changes exist; every change
		// differs from/to.
		if (res.Cost > 0) != (len(res.Changes) > 0) {
			t.Fatalf("trial %d: cost %f vs %d changes", trial, res.Cost, len(res.Changes))
		}
		for _, ch := range res.Changes {
			if ch.From.Identical(ch.To) {
				t.Fatalf("trial %d: no-op change %v", trial, ch)
			}
		}
	}
}

func TestIncRepairBindsToBase(t *testing.T) {
	r := custData(t)
	set := tutorialSet(t, r.Schema())
	str := r.Schema().MustIndex("STR")
	// New UK tuple with a conflicting street for an existing zip group.
	delta := []relation.Tuple{
		strTuple("44", "131", "7777777", "eve", "WRONG STREET", "edi", "EH4 8LE"),
	}
	res, err := AppendAndRepair(r, delta, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res, set); err != nil {
		t.Fatal(err)
	}
	newTID := r.Len() // appended at the end
	if got := res.Repaired.Get(newTID, str); got.Str() != "mayfield rd" {
		t.Errorf("delta street = %q, want base value mayfield rd", got.Str())
	}
	// Base tuples untouched.
	for _, ch := range res.Changes {
		if ch.TID < r.Len() {
			t.Errorf("IncRepair modified base tuple %d", ch.TID)
		}
	}
}

func TestIncRepairConstViolation(t *testing.T) {
	r := custData(t)
	set := tutorialSet(t, r.Schema())
	ct := r.Schema().MustIndex("CT")
	delta := []relation.Tuple{
		strTuple("01", "908", "8888888", "zed", "oak ave", "nyc", "07974"),
	}
	res, err := AppendAndRepair(r, delta, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res, set); err != nil {
		t.Fatal(err)
	}
	if got := res.Repaired.Get(r.Len(), ct); got.Str() != "mh" {
		t.Errorf("delta CT = %q, want mh", got.Str())
	}
}

func TestIncRepairDeltaOnlyConflict(t *testing.T) {
	r := custData(t)
	set := tutorialSet(t, r.Schema())
	// Two new tuples in a brand-new zip group disagreeing on street.
	delta := []relation.Tuple{
		strTuple("44", "131", "1010101", "pat", "king st", "edi", "NEWZIP"),
		strTuple("44", "131", "2020202", "sam", "queen st", "edi", "NEWZIP"),
	}
	res, err := AppendAndRepair(r, delta, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res, set); err != nil {
		t.Fatal(err)
	}
	str := r.Schema().MustIndex("STR")
	a := res.Repaired.Get(r.Len(), str)
	b := res.Repaired.Get(r.Len()+1, str)
	if !a.Identical(b) {
		t.Errorf("delta-only group not reconciled: %v vs %v", a, b)
	}
}

func TestIncRepairRejectsDirtyBase(t *testing.T) {
	r := custData(t)
	set := tutorialSet(t, r.Schema())
	str := r.Schema().MustIndex("STR")
	// Empty delta over any base succeeds trivially (nothing to repair).
	if _, err := Inc(r, set, nil, Options{}); err != nil {
		t.Fatalf("empty delta should succeed trivially: %v", err)
	}
	// Make the base itself inconsistent (tuples 0 and 1 share a UK zip
	// but now disagree on street), then add a delta tuple to that group:
	// IncRepair must refuse rather than silently repair the base.
	r.Set(1, str, relation.String("corrupted st"))
	delta := []relation.Tuple{
		strTuple("44", "131", "7777777", "eve", "third st", "edi", "EH4 8LE"),
	}
	_, err := AppendAndRepair(r, delta, set, Options{})
	if err == nil || !strings.Contains(err.Error(), "base") {
		t.Fatalf("dirty base should be reported, got %v", err)
	}
}

func TestIncMatchesBatchOnDeltaProperty(t *testing.T) {
	// Property: after IncRepair, the combined relation satisfies the set
	// (same guarantee Batch gives), on randomized deltas over a clean base.
	s := custSchema(t)
	set := tutorialSet(t, s)
	rng := rand.New(rand.NewSource(123))
	base := custData(t)
	cities := []string{"edi", "mh", "nyc"}
	for trial := 0; trial < 10; trial++ {
		var delta []relation.Tuple
		for i := 0; i < 1+rng.Intn(5); i++ {
			cc, ac := "44", "131"
			if rng.Intn(2) == 0 {
				cc, ac = "01", "908"
			}
			delta = append(delta, strTuple(cc, ac,
				"pn"+string(rune('0'+rng.Intn(5))),
				"nm", "some st",
				cities[rng.Intn(3)],
				[]string{"EH4 8LE", "07974", "NEW"}[rng.Intn(3)]))
		}
		res, err := AppendAndRepair(base, delta, set, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Verify(res, set); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, ch := range res.Changes {
			if ch.TID < base.Len() {
				t.Fatalf("trial %d: base modified", trial)
			}
		}
	}
}

func TestChangedTIDs(t *testing.T) {
	res := &Result{Changes: []Change{{TID: 5}, {TID: 2}, {TID: 5}}}
	got := ChangedTIDs(res)
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Errorf("ChangedTIDs = %v", got)
	}
}

func TestBatchSchemaMismatch(t *testing.T) {
	r := custData(t)
	other, _ := relation.StringSchema("other", "A")
	set := cfd.NewSet(other)
	if _, err := Batch(r, set, Options{}); err == nil {
		t.Error("schema mismatch should fail")
	}
}
