package repair

// unionFind is a standard disjoint-set forest with path compression and
// union by size, over dense integer cell identifiers.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the classes of a and b and returns the surviving root.
func (uf *unionFind) union(a, b int) int {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return ra
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	return ra
}

// sameSet reports whether a and b are in the same class.
func (uf *unionFind) sameSet(a, b int) bool { return uf.find(a) == uf.find(b) }
