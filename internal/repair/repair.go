// Package repair implements cost-based data repairing for CFDs,
// following Cong, Fan, Geerts, Jia and Ma ("Improving data quality:
// consistency and accuracy", VLDB 2007) — the algorithm behind the
// repairing facility of the Semandaq system presented in §5 of the
// tutorial: "given a set of cfds and a dirty database, it finds a
// candidate repair that minimally differs from the original data and
// satisfies the cfds".
//
// The repair model modifies attribute values only (no tuple insertions
// or deletions). The central data structure is the set of equivalence
// classes of cells: cells in the same class must end up with the same
// value. Resolving a variable violation merges the classes of the
// disagreeing right-hand-side cells; resolving a constant violation
// either binds the class to the required constant or, when that is
// impossible, moves the tuple out of the pattern's scope. Each class is
// finally assigned the value minimizing the weighted edit-distance cost
// against the original data.
//
// Termination is guaranteed: classes only grow (at most one merge per
// cell pair) and class targets only escalate unset → constant → fresh,
// so the pass loop reaches a fixpoint; the pass limit is a safety net
// that turns a logic error into a reported error instead of a hang.
package repair

import (
	"fmt"
	"sort"

	"semandaq/internal/cfd"
	"semandaq/internal/relation"
	"semandaq/internal/similarity"
)

// WeightFn gives the confidence weight of a cell; repairs prefer
// changing low-weight cells. The default weight is 1 for every cell.
type WeightFn func(tid, attr int) float64

// Options configures the repair algorithms.
type Options struct {
	// Weights is the cell-confidence function (default: uniform 1).
	Weights WeightFn
	// MaxPasses bounds the detect-resolve loop (default 64).
	MaxPasses int
	// ExactValueSelection bounds the class size up to which the
	// cost-minimizing representative is computed exactly (weighted
	// edit-distance medoid); larger classes use the weighted mode.
	// Default 24.
	ExactValueSelection int
}

func (o Options) withDefaults() Options {
	if o.Weights == nil {
		o.Weights = func(int, int) float64 { return 1 }
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 64
	}
	if o.ExactValueSelection == 0 {
		o.ExactValueSelection = 24
	}
	return o
}

// Change records one cell modification made by a repair.
type Change struct {
	TID  int
	Attr int
	From relation.Value
	To   relation.Value
}

// Result is the outcome of a repair run.
type Result struct {
	// Repaired is the repaired relation (a fresh copy; the input is not
	// modified).
	Repaired *relation.Relation
	// Changes lists every modified cell, sorted by (TID, Attr).
	Changes []Change
	// Cost is the total weighted edit-distance cost of the changes.
	Cost float64
	// Passes is the number of detect-resolve passes used.
	Passes int
}

// cellTarget escalates unset → constant → fresh. Fresh means "some value
// distinct from every constant in Σ and the active domain", used when a
// class is forced to two different constants, and materialized as a
// tagged placeholder value.
type cellTarget struct {
	kind  targetKind
	value relation.Value
}

type targetKind uint8

const (
	targetUnset targetKind = iota
	targetConst
	targetFresh
)

// Batch runs the BatchRepair algorithm: it repairs the whole relation
// against the CFD set and returns a repaired copy satisfying the set
// (or an error when the set is unsatisfiable on the data's schema).
func Batch(r *relation.Relation, set *cfd.Set, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if !r.Schema().Equal(set.Schema()) {
		return nil, fmt.Errorf("repair: relation %s does not match constraint schema %s",
			r.Schema().Name(), set.Schema().Name())
	}
	arity := r.Schema().Arity()
	n := r.Len() * arity
	uf := newUnionFind(n)
	targets := make(map[int]cellTarget)
	freshCounter := 0

	work := r.Clone()
	orig := r // original values for cost computation

	cellID := func(tid, attr int) int { return tid*arity + attr }

	// setConst binds the class of cell to a constant; on conflict with a
	// different constant the class escalates to fresh.
	setConst := func(cell int, v relation.Value) {
		root := uf.find(cell)
		t := targets[root]
		switch t.kind {
		case targetUnset:
			targets[root] = cellTarget{targetConst, v}
		case targetConst:
			if !t.value.Identical(v) {
				freshCounter++
				targets[root] = cellTarget{targetFresh, freshValue(r.Schema().Attr(cell%arity).Kind, freshCounter)}
			}
		case targetFresh:
			// stays fresh
		}
	}

	merge := func(a, b int) {
		ra, rb := uf.find(a), uf.find(b)
		if ra == rb {
			return
		}
		ta, tb := targets[ra], targets[rb]
		root := uf.union(ra, rb)
		delete(targets, ra)
		delete(targets, rb)
		switch {
		case ta.kind == targetFresh || tb.kind == targetFresh:
			freshCounter++
			targets[root] = cellTarget{targetFresh, freshValue(r.Schema().Attr(a%arity).Kind, freshCounter)}
		case ta.kind == targetConst && tb.kind == targetConst && !ta.value.Identical(tb.value):
			freshCounter++
			targets[root] = cellTarget{targetFresh, freshValue(r.Schema().Attr(a%arity).Kind, freshCounter)}
		case ta.kind == targetConst:
			targets[root] = ta
		case tb.kind == targetConst:
			targets[root] = tb
		default:
			delete(targets, root)
		}
	}

	// materialize writes every cell's class value into work.
	members := make(map[int][]int) // root -> member cells (rebuilt per pass)
	materialize := func() {
		for k := range members {
			delete(members, k)
		}
		for cell := 0; cell < n; cell++ {
			root := uf.find(cell)
			members[root] = append(members[root], cell)
		}
		for root, cells := range members {
			if len(cells) == 1 {
				if t, ok := targets[root]; ok && t.kind != targetUnset {
					work.Set(cells[0]/arity, cells[0]%arity, t.value)
				} else {
					work.Set(cells[0]/arity, cells[0]%arity, orig.Get(cells[0]/arity, cells[0]%arity))
				}
				continue
			}
			var v relation.Value
			if t, ok := targets[root]; ok && t.kind != targetUnset {
				v = t.value
			} else {
				v = classValue(orig, cells, arity, opts)
			}
			for _, cell := range cells {
				work.Set(cell/arity, cell%arity, v)
			}
		}
	}

	detector := cfd.NewDetector(set)
	passes := 0
	for ; passes < opts.MaxPasses; passes++ {
		materialize()
		vs, err := detector.Detect(work)
		if err != nil {
			return nil, err
		}
		if len(vs) == 0 {
			return finish(orig, work, passes+1, opts), nil
		}
		progress := false
		for _, v := range vs {
			switch v.Kind {
			case cfd.VarViolation:
				base := cellID(v.TIDs[0], v.Attr)
				for _, tid := range v.TIDs[1:] {
					if !uf.sameSet(base, cellID(tid, v.Attr)) {
						progress = true
					}
					merge(base, cellID(tid, v.Attr))
				}
			case cfd.ConstViolation:
				// Find the required constant from the violated row.
				c := v.CFD
				rhsIdx := indexOf(c.RHS(), v.Attr)
				pat := c.RowRHS(v.Row)[rhsIdx]
				cell := cellID(v.TIDs[0], v.Attr)
				root := uf.find(cell)
				t := targets[root]
				if t.kind == targetUnset || (t.kind == targetConst && t.value.Identical(pat.Constant())) {
					prev := targets[root]
					setConst(cell, pat.Constant())
					if targets[uf.find(cell)] != prev {
						progress = true
					}
					continue
				}
				// The RHS cell is already bound to a different constant
				// (or fresh): binding it to this row's constant cannot
				// succeed. Resolve by moving the tuple out of the row's
				// scope instead — break a constant LHS pattern (the
				// paper's alternative resolution for constant
				// violations).
				lhs := c.LHS()
				for i, lhsAttr := range lhs {
					lp := c.RowLHS(v.Row)[i]
					if !lp.IsConst() {
						continue
					}
					lcell := cellID(v.TIDs[0], lhsAttr)
					lroot := uf.find(lcell)
					lt := targets[lroot]
					if lt.kind == targetFresh {
						continue // already off-pattern; try another attr
					}
					if lt.kind == targetConst && lt.value.Identical(lp.Constant()) {
						continue // bound to match; cannot break here
					}
					freshCounter++
					targets[lroot] = cellTarget{
						targetFresh,
						freshValue(r.Schema().Attr(lhsAttr).Kind, freshCounter),
					}
					progress = true
					break
				}
			}
		}
		if !progress {
			// Every violation is already fully resolved in the class
			// structure yet still materializes as a violation: the
			// remaining conflicts are between forced constants and
			// pattern scopes (e.g. the fresh value re-enters another
			// pattern). One more materialize handles fresh escalation;
			// if the state is truly stuck the set is unsatisfiable here.
			return nil, fmt.Errorf("repair: no progress after %d passes; the CFD set is likely unsatisfiable on this schema (run cfd.Satisfiable)", passes+1)
		}
	}
	return nil, fmt.Errorf("repair: pass limit %d exceeded", opts.MaxPasses)
}

// finish computes the change list and cost.
func finish(orig, work *relation.Relation, passes int, opts Options) *Result {
	var changes []Change
	cost := 0.0
	arity := orig.Schema().Arity()
	for tid := 0; tid < orig.Len(); tid++ {
		for attr := 0; attr < arity; attr++ {
			from, to := orig.Get(tid, attr), work.Get(tid, attr)
			if from.Identical(to) {
				continue
			}
			changes = append(changes, Change{TID: tid, Attr: attr, From: from, To: to})
			cost += opts.Weights(tid, attr) * valueDistance(from, to)
		}
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].TID != changes[j].TID {
			return changes[i].TID < changes[j].TID
		}
		return changes[i].Attr < changes[j].Attr
	})
	return &Result{Repaired: work, Changes: changes, Cost: cost, Passes: passes}
}

// valueDistance is the normalized update cost of the paper: edit
// distance scaled to [0,1] for strings, 0/1 for other kinds.
func valueDistance(from, to relation.Value) float64 {
	if from.Identical(to) {
		return 0
	}
	if from.Kind() == relation.KindString && to.Kind() == relation.KindString {
		return 1 - similarity.LevenshteinSim(from.Str(), to.Str())
	}
	return 1
}

// classValue picks the value for an unforced class: the member value
// minimizing the total weighted distance to all members (exact medoid
// for small classes, weighted mode for large ones).
func classValue(orig *relation.Relation, cells []int, arity int, opts Options) relation.Value {
	return classValueBy(orig.Get, cells, arity, opts)
}

// classValueBy is classValue over an arbitrary original-value getter —
// the in-place IncRepair path reads pre-repair values from a delta
// snapshot instead of a second relation.
func classValueBy(orig func(tid, attr int) relation.Value, cells []int, arity int, opts Options) relation.Value {
	if len(cells) <= opts.ExactValueSelection {
		best := relation.Null()
		bestCost := -1.0
		for _, cand := range cells {
			cv := orig(cand/arity, cand%arity)
			cost := 0.0
			for _, cell := range cells {
				w := opts.Weights(cell/arity, cell%arity)
				cost += w * valueDistance(orig(cell/arity, cell%arity), cv)
			}
			if bestCost < 0 || cost < bestCost {
				best, bestCost = cv, cost
			}
		}
		return best
	}
	// Weighted mode.
	counts := make(map[string]float64)
	vals := make(map[string]relation.Value)
	for _, cell := range cells {
		v := orig(cell/arity, cell%arity)
		k := string(v.Encode(nil))
		counts[k] += opts.Weights(cell/arity, cell%arity)
		vals[k] = v
	}
	bestK, bestW := "", -1.0
	for k, w := range counts {
		if w > bestW || (w == bestW && k < bestK) {
			bestK, bestW = k, w
		}
	}
	return vals[bestK]
}

// freshValue materializes the i-th fresh placeholder of the given kind.
// String placeholders use a tagged form unlikely to collide with data;
// numeric kinds use large negatives.
func freshValue(kind relation.Kind, i int) relation.Value {
	switch kind {
	case relation.KindInt:
		return relation.Int(int64(-1_000_000_000) - int64(i))
	case relation.KindFloat:
		return relation.Float(float64(-1_000_000_000) - float64(i))
	default:
		return relation.String(fmt.Sprintf("⊥%d", i)) // ⊥i
	}
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// Verify re-detects violations on a repair result, returning an error if
// any remain. Used by tests and by Semandaq after user edits.
func Verify(res *Result, set *cfd.Set) error {
	vs, err := cfd.NewDetector(set).Detect(res.Repaired)
	if err != nil {
		return err
	}
	if len(vs) != 0 {
		return fmt.Errorf("repair: %d violations remain after repair", len(vs))
	}
	return nil
}
