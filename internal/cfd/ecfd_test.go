package cfd

import (
	"strings"
	"testing"

	"semandaq/internal/relation"
)

func TestEPatternMatching(t *testing.T) {
	in := EInP(relation.String("a"), relation.String("b"))
	if !in.Matches(relation.String("a")) || !in.Matches(relation.String("b")) {
		t.Error("disjunction should match its members")
	}
	if in.Matches(relation.String("c")) || in.Matches(relation.Null()) {
		t.Error("disjunction should reject non-members and NULL")
	}
	not := ENotInP(relation.String("a"))
	if not.Matches(relation.String("a")) {
		t.Error("negation should reject its members")
	}
	if !not.Matches(relation.String("z")) {
		t.Error("negation should accept non-members")
	}
	if not.Matches(relation.Null()) {
		t.Error("negation should reject NULL (constants never match NULL)")
	}
	if !EAnyP().Matches(relation.Null()) {
		t.Error("wildcard matches NULL")
	}
}

func TestECFDValidation(t *testing.T) {
	s := custSchema(t)
	if _, err := NewECFD("e", s, nil, []string{"CT"}, nil); err == nil {
		t.Error("empty X should fail")
	}
	if _, err := NewECFD("e", s, []string{"CC"}, []string{"CT"},
		[][]EPattern{{EAnyP()}}); err == nil {
		t.Error("wrong width should fail")
	}
	e, err := NewECFD("e", s, []string{"CC"}, []string{"CT"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rows() != 1 {
		t.Errorf("default tableau rows = %d", e.Rows())
	}
}

func TestECFDDetectDisjunction(t *testing.T) {
	r := custData(t)
	s := r.Schema()
	// For UK or US country codes, city must be one of the known cities.
	e, err := NewECFD("cities", s,
		[]string{"CC"}, []string{"CT"},
		[][]EPattern{{
			EInP(relation.String("44"), relation.String("01")),
			EInP(relation.String("edi"), relation.String("mh"), relation.String("nyc")),
		}})
	if err != nil {
		t.Fatal(err)
	}
	vs, err := DetectECFD(r, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("clean data: %v", vs)
	}
	r.Set(0, s.MustIndex("CT"), relation.String("atlantis"))
	vs, _ = DetectECFD(r, e)
	if len(vs) != 1 || vs[0].Kind != ConstViolation || vs[0].TIDs[0] != 0 {
		t.Errorf("violations = %v", vs)
	}
}

func TestECFDDetectNegation(t *testing.T) {
	r := custData(t)
	s := r.Schema()
	// Customers outside the US (CC != 01) must not have city 'mh'.
	e, err := NewECFD("no-mh-abroad", s,
		[]string{"CC"}, []string{"CT"},
		[][]EPattern{{
			ENotInP(relation.String("01")),
			ENotInP(relation.String("mh")),
		}})
	if err != nil {
		t.Fatal(err)
	}
	vs, _ := DetectECFD(r, e)
	if len(vs) != 0 {
		t.Fatalf("clean data: %v", vs)
	}
	r.Set(2, s.MustIndex("CT"), relation.String("mh"))
	vs, _ = DetectECFD(r, e)
	if len(vs) != 1 || vs[0].TIDs[0] != 2 {
		t.Errorf("violations = %v", vs)
	}
}

func TestECFDVariableViolation(t *testing.T) {
	r := custData(t)
	s := r.Schema()
	// Within CC in {44}: ZIP -> STR (same as CFD, via eCFD disjunction).
	e, err := NewECFD("e-zip", s,
		[]string{"CC", "ZIP"}, []string{"STR"},
		[][]EPattern{{EInP(relation.String("44")), EAnyP(), EAnyP()}})
	if err != nil {
		t.Fatal(err)
	}
	r.Set(1, s.MustIndex("STR"), relation.String("broken"))
	vs, _ := DetectECFD(r, e)
	if len(vs) != 1 || vs[0].Kind != VarViolation {
		t.Fatalf("violations = %v", vs)
	}
	// The equivalent CFD agrees.
	c := MustParse("cust([CC='44', ZIP] -> [STR])", s)
	cvs, _ := DetectOne(r, c)
	if len(cvs) != 1 || len(cvs[0].TIDs) != len(vs[0].TIDs) {
		t.Errorf("eCFD and CFD disagree: %v vs %v", vs, cvs)
	}
}

func TestECFDString(t *testing.T) {
	s := custSchema(t)
	e, _ := NewECFD("e1", s, []string{"CC"}, []string{"CT"},
		[][]EPattern{{EInP(relation.String("44")), ENotInP(relation.String("mh"))}})
	out := e.String()
	if !strings.Contains(out, "{'44'}") || !strings.Contains(out, "!{'mh'}") {
		t.Errorf("String() = %s", out)
	}
}
