package cfd

import (
	"fmt"
	"sort"

	"semandaq/internal/relation"
)

// ViolationKind distinguishes the two ways a CFD can be violated.
type ViolationKind int

const (
	// ConstViolation is a single-tuple violation: the tuple matches a
	// pattern row's LHS but disagrees with a constant in the row's RHS.
	ConstViolation ViolationKind = iota
	// VarViolation is a multi-tuple violation: two or more tuples match a
	// row's LHS, agree on all X attributes, but disagree on a wildcard Y
	// attribute (the embedded FD is violated inside the pattern's scope).
	VarViolation
)

// String names the violation kind.
func (k ViolationKind) String() string {
	if k == ConstViolation {
		return "const"
	}
	return "var"
}

// Violation records one detected CFD violation.
type Violation struct {
	CFD  *CFD
	Row  int // index of the violated tableau row
	Kind ViolationKind
	Attr int   // schema position of the violated Y attribute
	TIDs []int // ConstViolation: one TID; VarViolation: the conflicting X-group, sorted
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("%s violation of %s (row %d) on %s: tuples %v",
		v.Kind, v.CFD.name, v.Row, v.CFD.schema.Attr(v.Attr).Name, v.TIDs)
}

// Detector detects violations of a CFD set against relations. It caches
// per-CFD X-indexes keyed by the relation, so repeated detection over the
// same (unmutated) relation is cheap; see also IncDetect for the
// incremental variant.
type Detector struct {
	set *Set
}

// NewDetector creates a detector for the given CFD set.
func NewDetector(set *Set) *Detector { return &Detector{set: set} }

// Detect returns all violations of the detector's CFD set in r.
// Violations are reported per (CFD, tableau row, Y attribute): constant
// violations once per offending tuple, variable violations once per
// conflicting X-group.
func (d *Detector) Detect(r *relation.Relation) ([]Violation, error) {
	var out []Violation
	for _, c := range d.set.cfds {
		vs, err := DetectOne(r, c)
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	return out, nil
}

// DetectOne returns all violations of a single CFD in r.
//
// The algorithm follows the grouping view of TODS 2008: partition r by
// the X attributes once; every tuple in an X-group matches exactly the
// same tableau rows (LHS patterns only mention X), so row matching is
// decided per group. Within a matched group, constants in the row's RHS
// must hold for every tuple (constant violations) and wildcard RHS
// attributes must take a single value (variable violations).
func DetectOne(r *relation.Relation, c *CFD) ([]Violation, error) {
	if !r.Schema().Equal(c.schema) {
		return nil, fmt.Errorf("cfd: detecting %s over relation %s with schema %s",
			c.name, r.Schema().Name(), c.schema.Name())
	}
	idx := relation.BuildIndex(r, c.lhs)
	return detectGrouped(r, c, idx, nil), nil
}

// detectGrouped runs group-wise detection over every X-group, visiting
// groups in sorted key order so the violation list is deterministic (and
// byte-identical to what DetectParallel assembles from key chunks). If
// only is non-nil, it restricts reporting to groups containing at least
// one TID in only (used by incremental detection).
func detectGrouped(r *relation.Relation, c *CFD, idx *relation.HashIndex, only map[int]bool) []Violation {
	return DetectKeys(r, c, idx, idx.Keys(), only)
}

// DetectKeys is the partitioned detection entry point: it detects
// violations of c restricted to the X-groups listed in keys (pre-encoded
// index keys over c's LHS). Because every tuple belongs to exactly one
// X-group and group-wise detection never looks outside the group,
// splitting idx.Keys() into disjoint chunks and concatenating the
// per-chunk results in chunk order reproduces the serial output exactly;
// this is what DetectParallel's worker pool does.
func DetectKeys(r *relation.Relation, c *CFD, idx *relation.HashIndex, keys []string, only map[int]bool) []Violation {
	var out []Violation
	nl := len(c.lhs)
	for _, key := range keys {
		tids := idx.LookupKey(key)
		if len(tids) == 0 {
			continue
		}
		if only != nil {
			hit := false
			for _, tid := range tids {
				if only[tid] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		rep := r.Tuple(tids[0])
		for rowIdx, row := range c.tableau {
			if !row[:nl].Matches(rep, c.lhs) {
				continue
			}
			for j, attr := range c.rhs {
				p := row[nl+j]
				if p.IsConst() {
					for _, tid := range tids {
						if !p.Matches(r.Tuple(tid)[attr]) {
							out = append(out, Violation{
								CFD: c, Row: rowIdx, Kind: ConstViolation,
								Attr: attr, TIDs: []int{tid},
							})
						}
					}
					continue
				}
				// Wildcard RHS: the group must agree on attr.
				if len(tids) < 2 {
					continue
				}
				first := r.Tuple(tids[0])[attr]
				conflict := false
				for _, tid := range tids[1:] {
					if !r.Tuple(tid)[attr].Identical(first) {
						conflict = true
						break
					}
				}
				if conflict {
					group := append([]int(nil), tids...)
					sort.Ints(group)
					out = append(out, Violation{
						CFD: c, Row: rowIdx, Kind: VarViolation,
						Attr: attr, TIDs: group,
					})
				}
			}
		}
	}
	return out
}

// IncDetect returns the violations of c in r that involve at least one of
// the given TIDs (typically a freshly inserted or edited batch). The
// caller provides the current X-index over all of r; IncDetect only
// inspects the X-groups touched by the batch, which is the access pattern
// of the IncRepair algorithm (Cong et al., VLDB 2007).
func IncDetect(r *relation.Relation, c *CFD, idx *relation.HashIndex, tids []int) []Violation {
	only := make(map[int]bool, len(tids))
	touched := make(map[string][]int)
	for _, tid := range tids {
		only[tid] = true
		key := r.Tuple(tid).Key(idx.Attrs())
		touched[key] = idx.LookupKey(key)
	}
	var out []Violation
	nl := len(c.lhs)
	for _, groupTIDs := range touched {
		if len(groupTIDs) == 0 {
			continue
		}
		rep := r.Tuple(groupTIDs[0])
		for rowIdx, row := range c.tableau {
			if !row[:nl].Matches(rep, c.lhs) {
				continue
			}
			for j, attr := range c.rhs {
				p := row[nl+j]
				if p.IsConst() {
					for _, tid := range groupTIDs {
						if only[tid] && !p.Matches(r.Tuple(tid)[attr]) {
							out = append(out, Violation{
								CFD: c, Row: rowIdx, Kind: ConstViolation,
								Attr: attr, TIDs: []int{tid},
							})
						}
					}
					continue
				}
				if len(groupTIDs) < 2 {
					continue
				}
				first := r.Tuple(groupTIDs[0])[attr]
				conflict := false
				for _, tid := range groupTIDs[1:] {
					if !r.Tuple(tid)[attr].Identical(first) {
						conflict = true
						break
					}
				}
				if conflict {
					group := append([]int(nil), groupTIDs...)
					sort.Ints(group)
					out = append(out, Violation{
						CFD: c, Row: rowIdx, Kind: VarViolation,
						Attr: attr, TIDs: group,
					})
				}
			}
		}
	}
	return out
}

// ViolatingTIDs collapses a violation list to the sorted set of involved
// tuple IDs — the shape of the answer the detection SQL queries of
// TODS 2008 return.
func ViolatingTIDs(vs []Violation) []int {
	seen := map[int]bool{}
	for _, v := range vs {
		for _, tid := range v.TIDs {
			seen[tid] = true
		}
	}
	out := make([]int, 0, len(seen))
	for tid := range seen {
		out = append(out, tid)
	}
	sort.Ints(out)
	return out
}
