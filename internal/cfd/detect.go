package cfd

import (
	"fmt"
	"sort"

	"semandaq/internal/relation"
)

// ViolationKind distinguishes the two ways a CFD can be violated.
type ViolationKind int

const (
	// ConstViolation is a single-tuple violation: the tuple matches a
	// pattern row's LHS but disagrees with a constant in the row's RHS.
	ConstViolation ViolationKind = iota
	// VarViolation is a multi-tuple violation: two or more tuples match a
	// row's LHS, agree on all X attributes, but disagree on a wildcard Y
	// attribute (the embedded FD is violated inside the pattern's scope).
	VarViolation
)

// String names the violation kind.
func (k ViolationKind) String() string {
	if k == ConstViolation {
		return "const"
	}
	return "var"
}

// Violation records one detected CFD violation.
type Violation struct {
	CFD  *CFD
	Row  int // index of the violated tableau row
	Kind ViolationKind
	Attr int   // schema position of the violated Y attribute
	TIDs []int // ConstViolation: one TID; VarViolation: the conflicting X-group, sorted
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("%s violation of %s (row %d) on %s: tuples %v",
		v.Kind, v.CFD.name, v.Row, v.CFD.schema.Attr(v.Attr).Name, v.TIDs)
}

// Detector detects violations of a CFD set against relations. It caches
// the per-CFD X-partition indexes (PLIs) in a relation.IndexCache keyed
// by attribute set and validated against the relation's column versions,
// so repeated detection over the same (unmutated) relation — and over a
// relation whose edits missed the X columns — rebuilds nothing; see also
// IncDetect for the incremental variant.
type Detector struct {
	set   *Set
	cache *relation.IndexCache
}

// NewDetector creates a detector for the given CFD set with a private
// index cache.
func NewDetector(set *Set) *Detector {
	return &Detector{set: set, cache: relation.NewIndexCache()}
}

// NewDetectorWithCache creates a detector sharing an external index
// cache — the engine wires every detector of a session through the
// session's cache so service requests reuse indexes across calls.
func NewDetectorWithCache(set *Set, cache *relation.IndexCache) *Detector {
	if cache == nil {
		return NewDetector(set)
	}
	return &Detector{set: set, cache: cache}
}

// Detect returns all violations of the detector's CFD set in r.
// Violations are reported per (CFD, tableau row, Y attribute): constant
// violations once per offending tuple, variable violations once per
// conflicting X-group.
func (d *Detector) Detect(r *relation.Relation) ([]Violation, error) {
	var out []Violation
	for _, c := range d.set.cfds {
		if !r.Schema().Equal(c.schema) {
			return nil, fmt.Errorf("cfd: detecting %s over relation %s with schema %s",
				c.name, r.Schema().Name(), c.schema.Name())
		}
		pli := d.cache.Get(r, c.lhs)
		out = append(out, DetectGroups(r, c, pli, 0, pli.NumGroups())...)
	}
	return out, nil
}

// DetectOne returns all violations of a single CFD in r.
//
// The algorithm follows the grouping view of TODS 2008: partition r by
// the X attributes once; every tuple in an X-group matches exactly the
// same tableau rows (LHS patterns only mention X), so row matching is
// decided per group. Within a matched group, constants in the row's RHS
// must hold for every tuple (constant violations) and wildcard RHS
// attributes must take a single value (variable violations).
func DetectOne(r *relation.Relation, c *CFD) ([]Violation, error) {
	if !r.Schema().Equal(c.schema) {
		return nil, fmt.Errorf("cfd: detecting %s over relation %s with schema %s",
			c.name, r.Schema().Name(), c.schema.Name())
	}
	pli := relation.BuildPLI(r, c.lhs)
	return DetectGroups(r, c, pli, 0, pli.NumGroups()), nil
}

// rhsConst is the prepared fast path for one constant RHS pattern: the
// column code of the constant, resolved once per detection call so the
// per-tuple check is an int32 comparison instead of a Value comparison.
type rhsConst struct {
	code   int32
	ok     bool // some column value matches the constant
	unique bool // ...and it is the only code that does
}

// lhsRow is the prepared fast path for one tableau row's LHS patterns:
// group-representative matching by int32 code comparisons instead of
// Value comparisons — the per-group cost of the detection scan.
type lhsRow struct {
	// skip: some constant matches no value in its column, so no group
	// can match the row at all.
	skip bool
	// fallback: some constant resolved ambiguously (mixed-kind column);
	// code checks are necessary but not sufficient, confirm with the
	// exact Value semantics.
	fallback bool
	// checks are the uniquely resolved constants: the group matches only
	// if the representative's code at LHS position pos equals code.
	checks []lhsCheck
}

type lhsCheck struct {
	pos  int // index into the CFD's LHS attribute list
	code int32
}

// prepareLHS resolves every constant LHS pattern of c against r's column
// dictionaries, mirroring prepareRHS: a unique resolution turns the
// per-group row-match into code comparisons, a failed resolution rules
// the row out wholesale, and an ambiguous one falls back to
// pattern.Row.Matches (whose semantics the fast path reproduces
// exactly — tests assert byte-identical output vs the legacy scan).
func prepareLHS(r *relation.Relation, c *CFD) []lhsRow {
	out := make([]lhsRow, len(c.tableau))
	for i, row := range c.tableau {
		for j, attr := range c.lhs {
			p := row[j]
			if !p.IsConst() {
				continue
			}
			code, ok, unique := r.LookupCode(attr, p.Constant())
			switch {
			case !ok:
				out[i].skip = true
			case unique:
				out[i].checks = append(out[i].checks, lhsCheck{j, code})
			default:
				out[i].fallback = true
			}
		}
	}
	return out
}

// lhsColumnCodes gathers the code columns of c's LHS attributes.
func lhsColumnCodes(r *relation.Relation, c *CFD) [][]int32 {
	out := make([][]int32, len(c.lhs))
	for j, attr := range c.lhs {
		out[j] = r.ColumnCodes(attr)
	}
	return out
}

// prepareRHS resolves every constant RHS pattern of c against r's column
// dictionaries. prep[row][j] is meaningful only where the pattern is a
// constant.
func prepareRHS(r *relation.Relation, c *CFD) [][]rhsConst {
	nl := len(c.lhs)
	prep := make([][]rhsConst, len(c.tableau))
	for i, row := range c.tableau {
		prep[i] = make([]rhsConst, len(c.rhs))
		for j, attr := range c.rhs {
			if p := row[nl+j]; p.IsConst() {
				code, ok, unique := r.LookupCode(attr, p.Constant())
				prep[i][j] = rhsConst{code: code, ok: ok, unique: unique}
			}
		}
	}
	return prep
}

func isNaNValue(v relation.Value) bool { return v.IsNaN() }

// rhsColumnCodes gathers the code columns of c's RHS attributes.
func rhsColumnCodes(r *relation.Relation, c *CFD) [][]int32 {
	out := make([][]int32, len(c.rhs))
	for j, attr := range c.rhs {
		out[j] = r.ColumnCodes(attr)
	}
	return out
}

// groupVarConflict decides a wildcard-RHS check: does the group disagree
// on attr under Value.Identical? The fast path compares codes (equal
// codes certify agreement except for NaN, which is never Identical to
// itself); when codes cannot certify agreement — unequal codes may still
// be Identical across mixed kinds — it decides exactly. Shared by full
// and incremental detection so their semantics cannot diverge.
func groupVarConflict(r *relation.Relation, codes []int32, tids []int, attr int) bool {
	first := codes[tids[0]]
	agree := true
	for _, tid := range tids[1:] {
		if codes[tid] != first {
			agree = false
			break
		}
	}
	fv := r.Tuple(tids[0])[attr]
	if agree && !isNaNValue(fv) {
		return false
	}
	for _, tid := range tids[1:] {
		if !r.Tuple(tid)[attr].Identical(fv) {
			return true
		}
	}
	return false
}

// DetectGroups is the partitioned detection entry point: it detects
// violations of c restricted to the X-groups with indexes in [lo, hi) of
// the PLI over c's LHS. Because every tuple belongs to exactly one
// X-group and group-wise detection never looks outside the group,
// splitting [0, NumGroups) into disjoint ranges and concatenating the
// per-range results in range order reproduces the serial output exactly;
// this is what DetectParallel's worker pool does. (IncDetect is a
// separate loop, not a filter over DetectGroups: its constant-RHS
// reporting is restricted per tuple, not per group.)
//
// The hot path runs on column codes: constant RHS checks compare the
// tuple's code against the pre-resolved constant code, and wildcard RHS
// agreement compares codes pairwise. Both fall back to the exact
// Value.Identical semantics when codes cannot decide (a constant
// matching several codes in a mixed-kind column, a group that actually
// disagrees, or NaN — which is never Identical to itself), so the
// violation list is byte-identical to value-by-value detection.
func DetectGroups(r *relation.Relation, c *CFD, pli *relation.PLI, lo, hi int) []Violation {
	return detectGroupsPrepared(r, c, pli, lo, hi, newPrep(r, c))
}

// cfdPrep bundles the per-CFD constant resolutions and code columns so
// DetectParallel computes them once per CFD instead of once per chunk.
type cfdPrep struct {
	lhs      []lhsRow
	lhsCodes [][]int32
	rhs      [][]rhsConst
	rhsCodes [][]int32
}

func newPrep(r *relation.Relation, c *CFD) cfdPrep {
	return cfdPrep{
		lhs:      prepareLHS(r, c),
		lhsCodes: lhsColumnCodes(r, c),
		rhs:      prepareRHS(r, c),
		rhsCodes: rhsColumnCodes(r, c),
	}
}

// detectGroupsPrepared is DetectGroups with the per-CFD preparation
// hoisted out. The group loop runs entirely on column codes: row
// matching compares the representative's LHS codes against the
// pre-resolved constants (falling back to exact Value matching only for
// ambiguous mixed-kind resolutions), and the RHS checks work as
// documented on DetectGroups.
func detectGroupsPrepared(r *relation.Relation, c *CFD, pli *relation.PLI, lo, hi int, prep cfdPrep) []Violation {
	var out []Violation
	nl := len(c.lhs)
	for g := lo; g < hi; g++ {
		tids := pli.Group(g)
		if len(tids) == 0 {
			continue
		}
		repTID := tids[0]
		rep := r.Tuple(repTID)
		for rowIdx, row := range c.tableau {
			lp := &prep.lhs[rowIdx]
			if lp.skip {
				continue
			}
			matched := true
			for _, chk := range lp.checks {
				if prep.lhsCodes[chk.pos][repTID] != chk.code {
					matched = false
					break
				}
			}
			if !matched {
				continue
			}
			if lp.fallback && !row[:nl].Matches(rep, c.lhs) {
				continue
			}
			for j, attr := range c.rhs {
				p := row[nl+j]
				if p.IsConst() {
					ci := prep.rhs[rowIdx][j]
					codes := prep.rhsCodes[j]
					switch {
					case !ci.ok:
						// No value in the column matches the constant:
						// every tuple of the group violates.
						for _, tid := range tids {
							out = append(out, Violation{
								CFD: c, Row: rowIdx, Kind: ConstViolation,
								Attr: attr, TIDs: []int{tid},
							})
						}
					case ci.unique:
						for _, tid := range tids {
							if codes[tid] != ci.code {
								out = append(out, Violation{
									CFD: c, Row: rowIdx, Kind: ConstViolation,
									Attr: attr, TIDs: []int{tid},
								})
							}
						}
					default:
						for _, tid := range tids {
							if !p.Matches(r.Tuple(tid)[attr]) {
								out = append(out, Violation{
									CFD: c, Row: rowIdx, Kind: ConstViolation,
									Attr: attr, TIDs: []int{tid},
								})
							}
						}
					}
					continue
				}
				// Wildcard RHS: the group must agree on attr.
				if len(tids) < 2 {
					continue
				}
				if groupVarConflict(r, prep.rhsCodes[j], tids, attr) {
					group := append([]int(nil), tids...)
					sort.Ints(group)
					out = append(out, Violation{
						CFD: c, Row: rowIdx, Kind: VarViolation,
						Attr: attr, TIDs: group,
					})
				}
			}
		}
	}
	return out
}

// IncDetect returns the violations of c in r that involve at least one of
// the given TIDs (typically a freshly inserted or edited batch). The
// caller provides the current X-partition over all of r; IncDetect only
// inspects the X-groups touched by the batch, which is the access pattern
// of the IncRepair algorithm (Cong et al., VLDB 2007). Groups are
// visited in ascending group-index order, so the output is
// deterministic.
//
// IncDetect tolerates delta tails: the PLI may come from
// IndexCache.GetDelta, with appended rows absorbed but not compacted
// (relation.PLI.Advance), so an appended batch costs O(delta) partition
// maintenance plus the touched groups — no rebuild, no compaction.
// It equally tolerates patched partitions (relation.PLI.Patch, the
// drained form of a Set's journal entry): a re-homed TID sits in a tail
// or provisional group and its vacated slot is an end-of-span hole,
// both of which Group and GroupOf present as ordinary membership.
// Uncompacted provisional groups iterate after the base groups instead
// of in sorted-key position; full detection (DetectGroups over
// IndexCache.Get) always sees canonical order.
func IncDetect(r *relation.Relation, c *CFD, pli *relation.PLI, tids []int) []Violation {
	only := make(map[int]bool, len(tids))
	groupSet := make(map[int]bool, len(tids))
	for _, tid := range tids {
		only[tid] = true
		groupSet[pli.GroupOf(tid)] = true
	}
	groups := make([]int, 0, len(groupSet))
	for g := range groupSet {
		groups = append(groups, g)
	}
	sort.Ints(groups)

	var out []Violation
	nl := len(c.lhs)
	for _, g := range groups {
		groupTIDs := pli.Group(g)
		if len(groupTIDs) == 0 {
			continue
		}
		rep := r.Tuple(groupTIDs[0])
		for rowIdx, row := range c.tableau {
			if !row[:nl].Matches(rep, c.lhs) {
				continue
			}
			for j, attr := range c.rhs {
				p := row[nl+j]
				if p.IsConst() {
					for _, tid := range groupTIDs {
						if only[tid] && !p.Matches(r.Tuple(tid)[attr]) {
							out = append(out, Violation{
								CFD: c, Row: rowIdx, Kind: ConstViolation,
								Attr: attr, TIDs: []int{tid},
							})
						}
					}
					continue
				}
				if len(groupTIDs) < 2 {
					continue
				}
				if groupVarConflict(r, r.ColumnCodes(attr), groupTIDs, attr) {
					group := append([]int(nil), groupTIDs...)
					sort.Ints(group)
					out = append(out, Violation{
						CFD: c, Row: rowIdx, Kind: VarViolation,
						Attr: attr, TIDs: group,
					})
				}
			}
		}
	}
	return out
}

// ViolatingTIDs collapses a violation list to the sorted set of involved
// tuple IDs — the shape of the answer the detection SQL queries of
// TODS 2008 return.
func ViolatingTIDs(vs []Violation) []int {
	seen := map[int]bool{}
	for _, v := range vs {
		for _, tid := range v.TIDs {
			seen[tid] = true
		}
	}
	out := make([]int, 0, len(seen))
	for tid := range seen {
		out = append(out, tid)
	}
	sort.Ints(out)
	return out
}
