package cfd

import (
	"testing"

	"semandaq/internal/relation"
)

func TestSatisfiableBasic(t *testing.T) {
	s := custSchema(t)
	set, err := ParseSet(`
cfd phi1: cust([CC='44', ZIP] -> [STR])
cfd phi2: cust([CC='01', AC='908', PN] -> [CT='mh'])
`, s)
	if err != nil {
		t.Fatal(err)
	}
	ok, witness := Satisfiable(set)
	if !ok {
		t.Fatal("tutorial constraints should be satisfiable")
	}
	// The witness must satisfy the set.
	r := relation.New(s)
	r.MustInsert(witness)
	vs, err := NewDetector(set).Detect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("witness %v violates the set: %v", witness, vs)
	}
}

func TestUnsatisfiableConflictingConstants(t *testing.T) {
	s := custSchema(t)
	// Two all-wildcard-LHS rows forcing different constants on CT: every
	// tuple must have CT = 'a' and CT = 'b'.
	set, err := ParseSet(`
cust([CC] -> [CT='a'])
cust([CC] -> [CT='b'])
`, s)
	if err != nil {
		t.Fatal(err)
	}
	// Note: these rows only apply when CC matches the wildcard, which is
	// always. But a tuple dodges nothing: wildcards match all CC values.
	ok, w := Satisfiable(set)
	if ok {
		t.Fatalf("conflicting forced constants should be unsatisfiable, witness %v", w)
	}
}

func TestSatisfiableEscapeViaCondition(t *testing.T) {
	s := custSchema(t)
	// Conflict only inside CC='44': tuples with CC ≠ '44' escape.
	set, err := ParseSet(`
cust([CC='44'] -> [CT='a'])
cust([CC='44'] -> [CT='b'])
`, s)
	if err != nil {
		t.Fatal(err)
	}
	ok, witness := Satisfiable(set)
	if !ok {
		t.Fatal("should be satisfiable by avoiding CC='44'")
	}
	cc := s.MustIndex("CC")
	if witness[cc].Identical(relation.String("44")) {
		t.Errorf("witness should avoid CC='44': %v", witness)
	}
}

func TestUnsatisfiableChain(t *testing.T) {
	s := custSchema(t)
	// Forcing chain: any value of CC triggers CT='x'; CT='x' forces
	// ZIP='1'; ZIP='1' forces CT='y'. Contradiction for every tuple.
	set, err := ParseSet(`
cust([CC] -> [CT='x'])
cust([CT='x'] -> [ZIP='1'])
cust([ZIP='1'] -> [STR='s'])
cust([STR='s'] -> [AC='9'])
cust([AC='9'] -> [CT='y'])
`, s)
	if err != nil {
		t.Fatal(err)
	}
	if ok, w := Satisfiable(set); ok {
		t.Fatalf("chained contradiction should be unsatisfiable, witness %v", w)
	}
}

func TestImpliesReflexive(t *testing.T) {
	s := custSchema(t)
	phi := MustParse("cust([CC='44', ZIP] -> [STR])", s)
	set := NewSet(s)
	set.MustAdd(phi)
	ok, err := Implies(set, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Σ must imply its own members")
	}
}

func TestImpliesSpecialization(t *testing.T) {
	s := custSchema(t)
	// The FD ZIP→STR implies its conditional specialization to CC='44'.
	set := NewSet(s)
	set.MustAdd(MustParse("cust([ZIP] -> [STR])", s))
	phi := MustParse("cust([CC='44', ZIP] -> [STR])", s)
	ok, err := Implies(set, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("FD should imply its conditional specialization")
	}
	// The converse fails: the conditional CFD does not imply the FD.
	set2 := NewSet(s)
	set2.MustAdd(phi)
	fd := MustParse("cust([ZIP] -> [STR])", s)
	ok, err = Implies(set2, fd)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("conditional CFD must not imply the unconditional FD")
	}
}

func TestImpliesTransitivityOfFDs(t *testing.T) {
	s := custSchema(t)
	// Armstrong transitivity embedded in CFDs: ZIP→CT, CT→AC ⊨ ZIP→AC.
	set, err := ParseSet(`
cust([ZIP] -> [CT])
cust([CT] -> [AC])
`, s)
	if err != nil {
		t.Fatal(err)
	}
	phi := MustParse("cust([ZIP] -> [AC])", s)
	ok, err := Implies(set, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("transitivity should be derived")
	}
	// Sanity: the reverse direction is not implied.
	rev := MustParse("cust([AC] -> [ZIP])", s)
	ok, _ = Implies(set, rev)
	if ok {
		t.Error("AC → ZIP should not be implied")
	}
}

func TestImpliesConstantPropagation(t *testing.T) {
	s := custSchema(t)
	// CC='44' forces CT='edi'; CT='edi' forces AC='131'. Therefore
	// CC='44' forces AC='131'.
	set, err := ParseSet(`
cust([CC='44'] -> [CT='edi'])
cust([CT='edi'] -> [AC='131'])
`, s)
	if err != nil {
		t.Fatal(err)
	}
	phi := MustParse("cust([CC='44'] -> [AC='131'])", s)
	ok, err := Implies(set, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("constant chain should be implied")
	}
	wrong := MustParse("cust([CC='44'] -> [AC='999'])", s)
	ok, _ = Implies(set, wrong)
	if ok {
		t.Error("wrong constant should not be implied")
	}
}

func TestImpliesAugmentedLHS(t *testing.T) {
	s := custSchema(t)
	set := NewSet(s)
	set.MustAdd(MustParse("cust([ZIP] -> [STR])", s))
	// Augmentation: ZIP,CC → STR follows from ZIP → STR.
	phi := MustParse("cust([ZIP, CC] -> [STR])", s)
	ok, err := Implies(set, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("augmentation should be implied")
	}
}

func TestImpliesUnrelated(t *testing.T) {
	s := custSchema(t)
	set := NewSet(s)
	set.MustAdd(MustParse("cust([ZIP] -> [STR])", s))
	phi := MustParse("cust([NM] -> [CT])", s)
	ok, err := Implies(set, phi)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("unrelated CFD should not be implied")
	}
}

func TestMinimalCoverDropsImplied(t *testing.T) {
	s := custSchema(t)
	set, err := ParseSet(`
cust([ZIP] -> [STR])
cust([CC='44', ZIP] -> [STR])
`, s)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MinimalCover(set)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Len() != 1 {
		t.Fatalf("minimal cover kept %d CFDs:\n%s", mc.Len(), mc)
	}
	// The survivor must be the general FD (it implies the dropped one).
	if !mc.CFD(0).IsFD() {
		t.Errorf("survivor should be the plain FD, got %s", mc.CFD(0))
	}
}

func TestMinimalCoverNormalizes(t *testing.T) {
	s := custSchema(t)
	set, err := ParseSet(`cust([CC='01', AC='908', PN] -> [STR, CT='mh', ZIP])`, s)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MinimalCover(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range mc.All() {
		if len(c.RHS()) != 1 {
			t.Errorf("cover not in normal form: %s", c)
		}
	}
	if mc.Len() != 3 {
		t.Errorf("cover len = %d, want 3 single-attribute CFDs", mc.Len())
	}
}

func TestMinimalCoverPreservesSemantics(t *testing.T) {
	s := custSchema(t)
	set, err := ParseSet(`
cust([ZIP] -> [STR])
cust([CC='44', ZIP] -> [STR])
cust([CC, AC] -> [CT])
`, s)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MinimalCover(set)
	if err != nil {
		t.Fatal(err)
	}
	// Every original CFD must be implied by the cover and vice versa.
	for _, c := range set.All() {
		ok, err := Implies(mc, c)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("cover does not imply original %s", c)
		}
	}
	for _, c := range mc.All() {
		ok, err := Implies(set, c)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("original does not imply cover member %s", c)
		}
	}
}
