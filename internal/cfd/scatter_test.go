package cfd

import (
	"fmt"
	"reflect"
	"testing"

	"semandaq/internal/relation"
)

// splitRelation range-partitions r into w contiguous shard relations
// (the coordinator's registration-time partitioning: sizes n/w with the
// remainder spread over the leading shards), reproducing every tuple
// bit-exactly via InsertUnchecked. Returns the shards and their global
// TID offsets.
func splitRelation(r *relation.Relation, w int) ([]*relation.Relation, []int) {
	n := r.Len()
	size, rem := n/w, n%w
	shards := make([]*relation.Relation, w)
	offsets := make([]int, w)
	tid := 0
	for i := 0; i < w; i++ {
		hi := tid + size
		if i < rem {
			hi++
		}
		offsets[i] = tid
		s := relation.New(r.Schema())
		for ; tid < hi; tid++ {
			s.InsertUnchecked(r.Tuple(tid).Clone())
		}
		shards[i] = s
	}
	return shards, offsets
}

// localFetcher is the in-process BoundaryFetcher: it reads boundary
// group members straight off the shard relations with CollectGroups,
// translating shard-local TIDs to global ones — exactly what the worker
// /v1/shard/groups endpoint plus the coordinator client do over HTTP.
func localFetcher(set *Set, shards []*relation.Relation, offsets []int, caches []*relation.IndexCache) BoundaryFetcher {
	return func(cfdIdx int, keys []string) ([][]BoundaryGroup, error) {
		c := set.All()[cfdIdx]
		valAttrs := c.LHSRHSAttrs()
		out := make([][]BoundaryGroup, len(shards))
		for w, s := range shards {
			groups := CollectGroups(s, caches[w], c.LHS(), valAttrs, keys)
			for i := range groups {
				for m := range groups[i].TIDs {
					groups[i].TIDs[m] += offsets[w]
				}
			}
			out[w] = groups
		}
		return out, nil
	}
}

// TestScatterGatherMatchesDetect is the tentpole acceptance property:
// on randomized mixed-kind relations (kind-mismatched cells included),
// range-partitioned detection merged with MergeShards is byte-identical
// to single-process Detect, for every shard count — with cross-shard
// groups actually present (the generator's tiny domains guarantee that,
// and the test asserts it).
func TestScatterGatherMatchesDetect(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		r, set := mixedRelationAndSet(t, seed, 400)
		want, err := NewDetector(set).Detect(r)
		if err != nil {
			t.Fatalf("Detect: %v", err)
		}
		for _, w := range []int{1, 2, 3, 4} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, w), func(t *testing.T) {
				shards, offsets := splitRelation(r, w)
				caches := make([]*relation.IndexCache, w)
				results := make([][]ShardResult, w)
				for i, s := range shards {
					caches[i] = relation.NewIndexCache()
					sr, err := DetectShards(s, set, caches[i], 2)
					if err != nil {
						t.Fatalf("DetectShards(shard %d): %v", i, err)
					}
					results[i] = sr
				}
				got, stats, err := MergeShards(set, offsets, results, localFetcher(set, shards, offsets, caches))
				if err != nil {
					t.Fatalf("MergeShards: %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("merged violations diverge from single-process Detect:\n got %d violations\nwant %d violations\n got: %v\nwant: %v",
						len(got), len(want), got, want)
				}
				if w >= 2 && stats.BoundaryGroups == 0 {
					t.Fatal("no boundary groups at workers >= 2 — the residual pass went unexercised")
				}
				if w == 1 && stats.BoundaryGroups != 0 {
					t.Fatalf("single shard reported %d boundary groups", stats.BoundaryGroups)
				}
				if stats.Groups < stats.BoundaryGroups {
					t.Fatalf("stats inconsistent: %+v", stats)
				}
				if f := stats.BoundaryFraction(); f < 0 || f > 1 {
					t.Fatalf("boundary fraction %v out of range", f)
				}
			})
		}
	}
}

// TestDetectShardsGroupOrder pins the per-CFD group stream as key-sorted
// — the invariant the k-way merge in MergeShards relies on.
func TestDetectShardsGroupOrder(t *testing.T) {
	r, set := mixedRelationAndSet(t, 42, 300)
	results, err := DetectShards(r, set, relation.NewIndexCache(), 3)
	if err != nil {
		t.Fatalf("DetectShards: %v", err)
	}
	if len(results) != set.Len() {
		t.Fatalf("got %d CFD results, want %d", len(results), set.Len())
	}
	for ci, sr := range results {
		if len(sr.Groups) == 0 {
			t.Fatalf("CFD %d produced no groups", ci)
		}
		for i := 1; i < len(sr.Groups); i++ {
			if sr.Groups[i-1].Key >= sr.Groups[i].Key {
				t.Fatalf("CFD %d groups out of key order at %d", ci, i)
			}
		}
	}
}

// TestMergeShardsErrors pins the structured failures: mismatched result
// shapes and a missing fetcher when boundary groups exist.
func TestMergeShardsErrors(t *testing.T) {
	r, set := mixedRelationAndSet(t, 7, 120)
	shards, offsets := splitRelation(r, 2)
	results := make([][]ShardResult, 2)
	for i, s := range shards {
		sr, err := DetectShards(s, set, nil, 1)
		if err != nil {
			t.Fatalf("DetectShards: %v", err)
		}
		results[i] = sr
	}
	if _, _, err := MergeShards(set, offsets, results, nil); err == nil {
		t.Fatal("MergeShards with boundary groups and nil fetcher succeeded")
	}
	short := [][]ShardResult{results[0], results[1][:1]}
	if _, _, err := MergeShards(set, offsets, short, nil); err == nil {
		t.Fatal("MergeShards with a short shard result succeeded")
	}
	bad := func(cfdIdx int, keys []string) ([][]BoundaryGroup, error) {
		return nil, fmt.Errorf("worker unreachable")
	}
	if _, _, err := MergeShards(set, offsets, results, bad); err == nil {
		t.Fatal("MergeShards with a failing fetcher succeeded")
	}
}
