package cfd

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"semandaq/internal/relation"
)

// Scatter-gather detection across shard relations.
//
// A dataset is range-partitioned into W shard relations (contiguous TID
// slices, shard w owning global TIDs [offset[w], offset[w]+len_w)).
// Each shard detects locally and reports, per CFD, ALL of its X-groups
// in PLI order — keyed by the group's composite Value.Encode key
// (relation.AppendGroupKey) — with the shard-local violations attached
// to their groups. The coordinator merges the per-shard group streams:
//
//   - PLI group order IS lexicographic key order (relation.BuildPLI), so
//     per-shard streams are key-sorted and a k-way merge by raw key
//     bytes reproduces the single-process group traversal exactly.
//   - A group present in exactly one shard is complete there: its local
//     violations, TID-translated, are the global ones verbatim (all
//     constant-RHS checks are per-tuple, and variable-RHS checks only
//     see the group's members — all local).
//   - A group present in two or more shards (a BOUNDARY group, the one
//     place the range cut crosses a partition class) is replayed at the
//     coordinator from the shards' shipped members: constant checks are
//     per-tuple pattern matches on the shipped values, and variable
//     (wildcard-RHS) checks run the exact groupVarConflict semantics
//     over the concatenated membership. Local violations of boundary
//     groups are discarded — a shard's view of such a group is wrong in
//     both directions for wildcard RHS (a locally-agreeing group can
//     disagree globally, and a reported conflict carries a truncated
//     TID list).
//
// The result is byte-identical to single-process Detect over the
// unpartitioned relation (property-tested in scatter_test.go), and only
// the boundary groups' member values cross the wire — MergeStats
// reports that residual fraction.

// ShardGroup is one X-group of one CFD on one shard.
type ShardGroup struct {
	// Key is the composite Encode key of the group (raw bytes in a
	// string, NOT printable) — the cross-shard group identity and merge
	// order.
	Key string
	// N is the group's member count on this shard.
	N int
	// Vios are the shard-local violations of this group, in the exact
	// emission order of detectGroupsPrepared, with shard-LOCAL TIDs.
	Vios []Violation
}

// ShardResult is one CFD's group stream on one shard, in PLI (= key)
// order.
type ShardResult struct {
	Groups []ShardGroup
}

// DetectShards runs shard-local detection of every CFD in set over r,
// returning one ShardResult per CFD in set order. It is Detect
// restructured to keep per-group attribution: same PLIs (through cache),
// same prepared fast paths, same emission order within each group.
// workers parallelizes the group scan like DetectParallel (0 = NumCPU).
func DetectShards(r *relation.Relation, set *Set, cache *relation.IndexCache, workers int) ([]ShardResult, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if cache == nil {
		cache = relation.NewIndexCache()
	}
	out := make([]ShardResult, len(set.cfds))
	for i, c := range set.cfds {
		if !r.Schema().Equal(c.schema) {
			return nil, fmt.Errorf("cfd: detecting %s over relation %s with schema %s",
				c.name, r.Schema().Name(), c.schema.Name())
		}
		pli := cache.Get(r, c.lhs)
		prep := newPrep(r, c)
		n := pli.NumGroups()
		chunks := workers
		if chunks > n {
			chunks = n
		}
		if chunks <= 1 {
			out[i] = ShardResult{Groups: scanGroups(r, c, pli, 0, n, prep)}
			continue
		}
		parts := make([][]ShardGroup, chunks)
		size, rem := n/chunks, n%chunks
		var wg sync.WaitGroup
		lo := 0
		for k := 0; k < chunks; k++ {
			hi := lo + size
			if k < rem {
				hi++
			}
			wg.Add(1)
			go func(k, lo, hi int) {
				defer wg.Done()
				parts[k] = scanGroups(r, c, pli, lo, hi, prep)
			}(k, lo, hi)
			lo = hi
		}
		wg.Wait()
		var groups []ShardGroup
		for _, p := range parts {
			groups = append(groups, p...)
		}
		out[i] = ShardResult{Groups: groups}
	}
	return out, nil
}

// scanGroups walks the PLI groups in [lo, hi), emitting one ShardGroup
// per non-empty group with the group's violations attached
// (detectGroupsPrepared restricted to a single group preserves the
// serial emission order exactly).
func scanGroups(r *relation.Relation, c *CFD, pli *relation.PLI, lo, hi int, prep cfdPrep) []ShardGroup {
	var out []ShardGroup
	var key []byte
	for g := lo; g < hi; g++ {
		tids := pli.Group(g)
		if len(tids) == 0 {
			continue
		}
		key = r.AppendGroupKey(key[:0], tids[0], c.lhs)
		out = append(out, ShardGroup{
			Key:  string(key),
			N:    len(tids),
			Vios: detectGroupsPrepared(r, c, pli, g, g+1, prep),
		})
	}
	return out
}

// BoundaryGroup is the shipped membership of one boundary group on one
// shard: global TIDs (ascending) and, per member, a full-arity tuple
// with (at least) the CFD's LHS and RHS attributes populated.
type BoundaryGroup struct {
	TIDs []int
	Rows []relation.Tuple
}

// BoundaryFetcher retrieves boundary-group members for CFD cfdIdx: for
// each requested key, the per-worker memberships (result[w][k] for
// worker w, key k; empty TIDs where the worker has no such group —
// tolerated, since a racing append can shift membership between the
// detect and fetch phases).
type BoundaryFetcher func(cfdIdx int, keys []string) ([][]BoundaryGroup, error)

// MergeStats quantifies the residual pass: how much of the partition
// straddled the range cuts and had to ship member values.
type MergeStats struct {
	// Groups counts distinct (CFD, group) pairs across the cluster;
	// BoundaryGroups the subset present on 2+ shards.
	Groups         int `json:"groups"`
	BoundaryGroups int `json:"boundary_groups"`
	// BoundaryTuples counts the member rows shipped for the replay.
	BoundaryTuples int `json:"boundary_tuples"`
}

// BoundaryFraction is BoundaryGroups/Groups — the residual fraction the
// load reports commit.
func (m MergeStats) BoundaryFraction() float64 {
	if m.Groups == 0 {
		return 0
	}
	return float64(m.BoundaryGroups) / float64(m.Groups)
}

// CollectGroups is the worker-side half of the boundary fetch: for each
// requested composite key over partAttrs, the matching group's local
// TIDs plus per-member full-arity tuples populated on valAttrs. Keys
// with no matching group return empty entries.
func CollectGroups(r *relation.Relation, cache *relation.IndexCache, partAttrs, valAttrs []int, keys []string) []BoundaryGroup {
	if cache == nil {
		cache = relation.NewIndexCache()
	}
	pli := cache.Get(r, partAttrs)
	want := make(map[string]int, len(keys))
	for i, k := range keys {
		want[k] = i
	}
	out := make([]BoundaryGroup, len(keys))
	var key []byte
	arity := r.Schema().Arity()
	for g, n := 0, pli.NumGroups(); g < n; g++ {
		tids := pli.Group(g)
		if len(tids) == 0 {
			continue
		}
		key = r.AppendGroupKey(key[:0], tids[0], partAttrs)
		i, ok := want[string(key)]
		if !ok {
			continue
		}
		bg := BoundaryGroup{TIDs: append([]int(nil), tids...), Rows: make([]relation.Tuple, len(tids))}
		for m, tid := range tids {
			row := make(relation.Tuple, arity)
			for _, a := range valAttrs {
				row[a] = r.Get(tid, a)
			}
			bg.Rows[m] = row
		}
		out[i] = bg
	}
	return out
}

// LHSRHSAttrs returns the sorted union of a CFD's X and Y attribute
// positions — the value attributes a boundary replay needs shipped.
func (c *CFD) LHSRHSAttrs() []int {
	out := append(append([]int(nil), c.lhs...), c.rhs...)
	sort.Ints(out)
	return out
}

// MergeShards merges per-shard detection results into the global
// violation list, byte-identical to single-process Detect over the
// union relation. offsets[w] is worker w's global TID offset (workers
// in ascending TID-range order); shards[w] is worker w's DetectShards
// output. fetch supplies boundary-group members on demand; it is called
// at most once per CFD (with all of that CFD's boundary keys) and never
// when no group straddles a cut.
func MergeShards(set *Set, offsets []int, shards [][]ShardResult, fetch BoundaryFetcher) ([]Violation, MergeStats, error) {
	var out []Violation
	var stats MergeStats
	for w, sr := range shards {
		if len(sr) != len(set.cfds) {
			return nil, stats, fmt.Errorf("cfd: shard %d returned %d CFD results, set has %d", w, len(sr), len(set.cfds))
		}
	}
	for ci, c := range set.cfds {
		merged, err := mergeCFD(c, ci, offsets, shards, fetch, &stats)
		if err != nil {
			return nil, stats, err
		}
		out = append(out, merged...)
	}
	return out, stats, nil
}

// mergeCFD runs the k-way key merge for one CFD.
func mergeCFD(c *CFD, ci int, offsets []int, shards [][]ShardResult, fetch BoundaryFetcher, stats *MergeStats) ([]Violation, error) {
	W := len(shards)
	streams := make([][]ShardGroup, W)
	pos := make([]int, W)
	for w := range shards {
		streams[w] = shards[w][ci].Groups
	}

	// Pass 1: k-way merge the key-sorted streams into the global group
	// order, partitioning into sole-owner groups (emit local violations
	// verbatim) and boundary groups (collect keys for the residual
	// fetch). mergeUnit remembers, per global group in order, how to
	// produce its violations in pass 2.
	type mergeUnit struct {
		soleWorker int // -1 for boundary groups
		soleGroup  *ShardGroup
		boundary   int // index into boundaryKeys
	}
	var units []mergeUnit
	var boundaryKeys []string
	for {
		minKey := ""
		found := false
		for w := 0; w < W; w++ {
			if pos[w] < len(streams[w]) {
				k := streams[w][pos[w]].Key
				if !found || k < minKey {
					minKey, found = k, true
				}
			}
		}
		if !found {
			break
		}
		var holders []int
		for w := 0; w < W; w++ {
			if pos[w] < len(streams[w]) && streams[w][pos[w]].Key == minKey {
				holders = append(holders, w)
			}
		}
		stats.Groups++
		if len(holders) == 1 {
			w := holders[0]
			units = append(units, mergeUnit{soleWorker: w, soleGroup: &streams[w][pos[w]]})
		} else {
			units = append(units, mergeUnit{soleWorker: -1, boundary: len(boundaryKeys)})
			boundaryKeys = append(boundaryKeys, minKey)
			stats.BoundaryGroups++
		}
		for _, w := range holders {
			pos[w]++
		}
	}

	// Residual fetch: the boundary groups' members, per worker.
	var members [][]BoundaryGroup
	if len(boundaryKeys) > 0 {
		if fetch == nil {
			return nil, fmt.Errorf("cfd: %d boundary groups for %s but no fetcher configured", len(boundaryKeys), c.name)
		}
		var err error
		members, err = fetch(ci, boundaryKeys)
		if err != nil {
			return nil, fmt.Errorf("cfd: fetching boundary groups for %s: %w", c.name, err)
		}
		if len(members) != len(shards) {
			return nil, fmt.Errorf("cfd: boundary fetch for %s returned %d workers, want %d", c.name, len(members), len(shards))
		}
	}

	// Pass 2: emit in global group order.
	var out []Violation
	for _, u := range units {
		if u.soleWorker >= 0 {
			out = appendTranslated(out, c, u.soleGroup.Vios, offsets[u.soleWorker])
			continue
		}
		// Concatenate the shipped memberships in worker order: ranges
		// are contiguous and ascending, so this is ascending global TID
		// order — the single-process group membership.
		var tids []int
		var rows []relation.Tuple
		for w := 0; w < W; w++ {
			bg := members[w][u.boundary]
			if len(bg.TIDs) != len(bg.Rows) {
				return nil, fmt.Errorf("cfd: boundary group of %s: %d TIDs but %d rows from worker %d",
					c.name, len(bg.TIDs), len(bg.Rows), w)
			}
			tids = append(tids, bg.TIDs...)
			rows = append(rows, bg.Rows...)
		}
		stats.BoundaryTuples += len(tids)
		out = append(out, replayGroup(c, tids, rows)...)
	}
	return out, nil
}

// appendTranslated appends vs with every TID shifted by off — the
// local→global translation for a sole-owner group.
func appendTranslated(dst []Violation, c *CFD, vs []Violation, off int) []Violation {
	for _, v := range vs {
		tids := make([]int, len(v.TIDs))
		for i, tid := range v.TIDs {
			tids[i] = tid + off
		}
		dst = append(dst, Violation{CFD: c, Row: v.Row, Kind: v.Kind, Attr: v.Attr, TIDs: tids})
	}
	return dst
}

// replayGroup re-runs the single-group detection of detectGroupsPrepared
// on a shipped membership, value-exactly. Row matching, constant checks
// and wildcard conflicts depend only on the members' values (code fast
// paths are extensionally pattern/Identical checks — see the
// detectGroupsPrepared documentation), so evaluating the exact semantics
// directly on the shipped rows reproduces the emission byte for byte:
// rows outer, RHS attributes inner, constant violations per member in
// TID order, variable violations once per conflicting group.
func replayGroup(c *CFD, tids []int, rows []relation.Tuple) []Violation {
	if len(tids) == 0 {
		return nil
	}
	var out []Violation
	nl := len(c.lhs)
	rep := rows[0]
	for rowIdx, row := range c.tableau {
		if !row[:nl].Matches(rep, c.lhs) {
			continue
		}
		for j, attr := range c.rhs {
			p := row[nl+j]
			if p.IsConst() {
				for m, tid := range tids {
					if !p.Matches(rows[m][attr]) {
						out = append(out, Violation{
							CFD: c, Row: rowIdx, Kind: ConstViolation,
							Attr: attr, TIDs: []int{tid},
						})
					}
				}
				continue
			}
			if len(tids) < 2 {
				continue
			}
			// groupVarConflict semantics: disagree iff some member is
			// not Identical to the FIRST member's value (NaN is never
			// Identical to itself, NULL is Identical to NULL).
			first := rep[attr]
			conflict := false
			for m := 1; m < len(rows); m++ {
				if !rows[m][attr].Identical(first) {
					conflict = true
					break
				}
			}
			if conflict {
				group := append([]int(nil), tids...)
				sort.Ints(group)
				out = append(out, Violation{
					CFD: c, Row: rowIdx, Kind: VarViolation,
					Attr: attr, TIDs: group,
				})
			}
		}
	}
	return out
}
