package cfd

import (
	"math/rand"
	"testing"

	"semandaq/internal/relation"
)

// violationSet canonicalizes violations for set comparison.
func violationSet(vs []Violation) map[string]bool {
	out := map[string]bool{}
	for _, v := range vs {
		key := v.Kind.String()
		key += "|" + string(rune('0'+v.Row))
		key += "|" + string(rune('0'+v.Attr))
		for _, tid := range v.TIDs {
			key += "," + string(rune('0'+tid%73)) + string(rune('0'+tid/73))
		}
		out[key] = true
	}
	return out
}

func TestNaiveMatchesGrouped(t *testing.T) {
	s := custSchema(t)
	set, err := ParseSet(`
cfd p1: cust([CC='44', ZIP] -> [STR])
cfd p2: cust([CC, AC] -> [CT]) { ('44', '131' || 'edi'), (_, _ || _) }
cfd p3: cust([CC='01', AC='908', PN] -> [CT='mh'])
`, s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	cities := []string{"edi", "mh", "nyc"}
	for trial := 0; trial < 10; trial++ {
		r := relation.New(s)
		for i := 0; i < 30+rng.Intn(40); i++ {
			cc, ac := "44", "131"
			if rng.Intn(2) == 0 {
				cc, ac = "01", "908"
			}
			tup := strTuple(cc, ac,
				"p"+string(rune('0'+rng.Intn(4))), "n",
				"st "+string(rune('a'+rng.Intn(3))),
				cities[rng.Intn(3)],
				"Z"+string(rune('0'+rng.Intn(2))))
			if rng.Intn(20) == 0 {
				tup[rng.Intn(len(tup))] = relation.Null()
			}
			r.MustInsert(tup)
		}
		for _, c := range set.All() {
			grouped, err := DetectOne(r, c)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := DetectNaive(r, c)
			if err != nil {
				t.Fatal(err)
			}
			gs, ns := violationSet(grouped), violationSet(naive)
			if len(gs) != len(ns) {
				t.Fatalf("trial %d cfd %s: grouped %d violations vs naive %d",
					trial, c.Name(), len(gs), len(ns))
			}
			for k := range gs {
				if !ns[k] {
					t.Fatalf("trial %d cfd %s: grouped violation %q missing from naive", trial, c.Name(), k)
				}
			}
		}
	}
}

func TestNaiveSchemaMismatch(t *testing.T) {
	s := custSchema(t)
	other, _ := relation.StringSchema("other", "A", "B")
	r := relation.New(other)
	c := MustParse("cust([CC] -> [CT])", s)
	if _, err := DetectNaive(r, c); err == nil {
		t.Error("schema mismatch should fail")
	}
}
