package cfd

import (
	"strings"
	"testing"

	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// custSchema is the running example schema of the tutorial (§3) and of
// TODS 2008: cust(CC, AC, PN, NM, STR, CT, ZIP), all string-typed.
func custSchema(t *testing.T) *relation.Schema {
	t.Helper()
	s, err := relation.StringSchema("cust", "CC", "AC", "PN", "NM", "STR", "CT", "ZIP")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func strTuple(vals ...string) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.String(v)
	}
	return t
}

// custData builds the example instance from the tutorial: UK customers
// where zip determines street, US customers with area code 908 in MH.
func custData(t *testing.T) *relation.Relation {
	t.Helper()
	r := relation.New(custSchema(t))
	//                 CC    AC     PN         NM      STR            CT     ZIP
	r.MustInsert(strTuple("44", "131", "1111111", "mike", "mayfield rd", "edi", "EH4 8LE"))
	r.MustInsert(strTuple("44", "131", "2222222", "rick", "mayfield rd", "edi", "EH4 8LE"))
	r.MustInsert(strTuple("44", "131", "3333333", "anna", "crichton st", "edi", "EH8 9LE"))
	r.MustInsert(strTuple("01", "908", "4444444", "joe", "mtn ave", "mh", "07974"))
	r.MustInsert(strTuple("01", "908", "5555555", "ben", "high st", "mh", "07974"))
	r.MustInsert(strTuple("01", "212", "6666666", "kim", "broadway", "nyc", "10012"))
	return r
}

func TestNewValidation(t *testing.T) {
	s := custSchema(t)
	if _, err := New("x", s, nil, []string{"STR"}, nil); err == nil {
		t.Error("empty X should fail")
	}
	if _, err := New("x", s, []string{"CC"}, nil, nil); err == nil {
		t.Error("empty Y should fail")
	}
	if _, err := New("x", s, []string{"CC", "CC"}, []string{"STR"}, nil); err == nil {
		t.Error("duplicate X attr should fail")
	}
	if _, err := New("x", s, []string{"CC"}, []string{"CC"}, nil); err == nil {
		t.Error("X ∩ Y ≠ ∅ should fail")
	}
	if _, err := New("x", s, []string{"NOPE"}, []string{"STR"}, nil); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := New("x", s, []string{"CC"}, []string{"STR"},
		pattern.Tableau{{pattern.Wild()}}); err == nil {
		t.Error("wrong tableau width should fail")
	}
	// Empty tableau becomes a plain FD.
	c, err := New("fd", s, []string{"ZIP"}, []string{"STR"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsFD() {
		t.Error("empty tableau should produce a plain FD")
	}
}

func TestParseTutorialExamples(t *testing.T) {
	s := custSchema(t)
	// The first example CFD of tutorial §3: customer([cc = 44, zip] → [street]).
	c, err := Parse("cfd phi1: cust([CC='44', ZIP] -> [STR])", s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "phi1" {
		t.Errorf("name = %q", c.Name())
	}
	if got := c.LHSNames(); got[0] != "CC" || got[1] != "ZIP" {
		t.Errorf("LHS = %v", got)
	}
	if c.Rows() != 1 {
		t.Fatalf("rows = %d", c.Rows())
	}
	if !c.RowLHS(0)[0].Matches(relation.String("44")) || !c.RowLHS(0)[1].IsWild() {
		t.Errorf("row LHS = %v", c.RowLHS(0))
	}
	if !c.RowRHS(0)[0].IsWild() {
		t.Errorf("row RHS = %v", c.RowRHS(0))
	}

	// The second example: customer([cc=01, ac=908, phn] → [street, city='mh', zip]).
	c2, err := Parse("cfd phi2: cust([CC='01', AC='908', PN] -> [STR, CT='mh', ZIP])", s)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Rows() != 1 || len(c2.RHSNames()) != 3 {
		t.Fatalf("phi2 shape: rows=%d rhs=%v", c2.Rows(), c2.RHSNames())
	}
	if !c2.RowRHS(0)[1].Matches(relation.String("mh")) {
		t.Errorf("phi2 CT pattern = %v", c2.RowRHS(0)[1])
	}
}

func TestParseExplicitTableau(t *testing.T) {
	s := custSchema(t)
	c, err := Parse(`cfd phi: cust([CC, AC] -> [CT]) { ('44', '131' || 'edi'), ('01', '908' || 'mh'), (_, _ || _) }`, s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 3 {
		t.Fatalf("rows = %d, want 3", c.Rows())
	}
	if !c.RowRHS(1)[0].Matches(relation.String("mh")) {
		t.Errorf("row 1 RHS = %v", c.RowRHS(1))
	}
	if !c.RowLHS(2)[0].IsWild() {
		t.Errorf("row 2 should be all wild: %v", c.RowLHS(2))
	}
}

func TestParseRoundTrip(t *testing.T) {
	s := custSchema(t)
	inputs := []string{
		"cfd a: cust([CC='44', ZIP] -> [STR])",
		"cfd b: cust([CC, AC] -> [CT]) { ('44', '131' || 'edi'), (_, _ || _) }",
		"cust([ZIP] -> [STR])",
	}
	for _, in := range inputs {
		c, err := Parse(in, s)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		back, err := Parse(c.String(), s)
		if err != nil {
			t.Fatalf("round trip of %q -> %q: %v", in, c.String(), err)
		}
		if back.String() != c.String() {
			t.Errorf("round trip not stable: %q -> %q", c.String(), back.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	s := custSchema(t)
	bad := []string{
		"",
		"cust",
		"cust([CC] -> )",
		"cust([CC] [STR])",
		"other([CC] -> [STR])",
		"cust([NOPE] -> [STR])",
		"cust([CC='44'] -> [STR]) { ('44' || _) }", // inline + tableau
		"cust([CC] -> [STR]) { ('44') }",           // missing ||
		"cust([CC] -> [STR]) { ('44' || _) } extra",
		"cust([CC='unterminated] -> [STR])",
	}
	for _, in := range bad {
		if _, err := Parse(in, s); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseSet(t *testing.T) {
	s := custSchema(t)
	src := `
# tutorial constraints
cfd phi1: cust([CC='44', ZIP] -> [STR])
cfd phi2: cust([CC='01', AC='908', PN] -> [STR, CT='mh', ZIP])
`
	set, err := ParseSet(src, s)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("set len = %d", set.Len())
	}
	if set.TotalRows() != 2 {
		t.Errorf("TotalRows = %d", set.TotalRows())
	}
}

func TestDetectCleanData(t *testing.T) {
	r := custData(t)
	set, err := ParseSet(`
cfd phi1: cust([CC='44', ZIP] -> [STR])
cfd phi2: cust([CC='01', AC='908', PN] -> [STR, CT='mh', ZIP])
cfd phi3: cust([CC, AC] -> [CT])
`, r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	vs, err := NewDetector(set).Detect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("clean data should have no violations, got %v", vs)
	}
}

func TestDetectConstViolation(t *testing.T) {
	r := custData(t)
	// Break phi2's constant: a 908 customer outside mh.
	r.Set(4, r.Schema().MustIndex("CT"), relation.String("nyc"))
	c := MustParse("cfd phi2: cust([CC='01', AC='908', PN] -> [CT='mh'])", r.Schema())
	vs, err := DetectOne(r, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly 1", vs)
	}
	v := vs[0]
	if v.Kind != ConstViolation || len(v.TIDs) != 1 || v.TIDs[0] != 4 {
		t.Errorf("violation = %+v", v)
	}
	if v.Attr != r.Schema().MustIndex("CT") {
		t.Errorf("violated attr = %d", v.Attr)
	}
}

func TestDetectVarViolation(t *testing.T) {
	r := custData(t)
	// Tuples 0 and 1 are UK customers sharing ZIP; break their STR.
	r.Set(1, r.Schema().MustIndex("STR"), relation.String("corrupted st"))
	c := MustParse("cfd phi1: cust([CC='44', ZIP] -> [STR])", r.Schema())
	vs, err := DetectOne(r, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly 1", vs)
	}
	v := vs[0]
	if v.Kind != VarViolation {
		t.Errorf("kind = %v", v.Kind)
	}
	if len(v.TIDs) != 2 || v.TIDs[0] != 0 || v.TIDs[1] != 1 {
		t.Errorf("TIDs = %v, want [0 1]", v.TIDs)
	}
}

func TestDetectFDvsCFDCapturesMore(t *testing.T) {
	// The tutorial's core point: the CFD catches inconsistencies the plain
	// FD cannot. Two US tuples share ZIP but differ on STR — legal for
	// the conditional phi1 (scoped to CC=44), but the same data violates
	// the unconditional FD ZIP → STR.
	r := custData(t)
	zip, str := r.Schema().MustIndex("ZIP"), r.Schema().MustIndex("STR")
	r.Set(5, zip, relation.String("07974")) // kim now shares joe/ben's zip
	_ = str
	cfdPhi := MustParse("cust([CC='44', ZIP] -> [STR])", r.Schema())
	fd := MustParse("cust([ZIP] -> [STR])", r.Schema())
	vsCFD, _ := DetectOne(r, cfdPhi)
	vsFD, _ := DetectOne(r, fd)
	if len(vsCFD) != 0 {
		t.Errorf("conditional CFD should not fire on US tuples: %v", vsCFD)
	}
	if len(vsFD) == 0 {
		t.Error("plain FD should fire on shared-zip US tuples")
	}

	// Conversely, a constant CFD catches a single-tuple error no FD can:
	// one 908 customer with a wrong city is invisible to every FD (there
	// is no second tuple to disagree with after changing PN to be unique).
	r2 := custData(t)
	r2.Set(4, r2.Schema().MustIndex("CT"), relation.String("nyc"))
	constCFD := MustParse("cust([CC='01', AC='908', PN] -> [CT='mh'])", r2.Schema())
	vs, _ := DetectOne(r2, constCFD)
	if len(vs) != 1 {
		t.Errorf("constant CFD should flag the mistyped city: %v", vs)
	}
}

func TestDetectMultiRowTableau(t *testing.T) {
	r := custData(t)
	c := MustParse(`cust([CC, AC] -> [CT]) { ('44', '131' || 'edi'), ('01', '908' || 'mh') }`, r.Schema())
	// Clean: no violations.
	vs, err := DetectOne(r, c)
	if err != nil || len(vs) != 0 {
		t.Fatalf("clean: %v, %v", vs, err)
	}
	// Corrupt a UK row city: only row 0 fires.
	r.Set(2, r.Schema().MustIndex("CT"), relation.String("gla"))
	vs, _ = DetectOne(r, c)
	if len(vs) != 1 || vs[0].Row != 0 || vs[0].TIDs[0] != 2 {
		t.Errorf("violations = %v", vs)
	}
}

func TestDetectNullSemantics(t *testing.T) {
	s := custSchema(t)
	r := relation.New(s)
	r.MustInsert(strTuple("44", "131", "1", "a", "x st", "edi", "Z"))
	tid, _ := r.Insert(relation.Tuple{
		relation.String("44"), relation.String("131"), relation.String("2"),
		relation.String("b"), relation.Null(), relation.String("edi"), relation.String("Z"),
	})
	c := MustParse("cust([CC='44', ZIP] -> [STR])", s)
	vs, _ := DetectOne(r, c)
	// NULL differs from "x st" under Identical, so the pair conflicts.
	if len(vs) != 1 || vs[0].Kind != VarViolation {
		t.Fatalf("NULL vs value should conflict: %v", vs)
	}
	// A constant pattern never matches NULL: tuple with NULL CC is out of scope.
	r2 := relation.New(s)
	r2.MustInsert(relation.Tuple{
		relation.Null(), relation.String("131"), relation.String("1"),
		relation.String("a"), relation.String("s"), relation.String("edi"), relation.String("Z"),
	})
	vs2, _ := DetectOne(r2, MustParse("cust([CC='44', ZIP] -> [STR='s2'])", s))
	if len(vs2) != 0 {
		t.Errorf("NULL CC should not match constant pattern: %v", vs2)
	}
	_ = tid
}

func TestViolatingTIDs(t *testing.T) {
	vs := []Violation{
		{TIDs: []int{3, 1}},
		{TIDs: []int{1, 5}},
	}
	got := ViolatingTIDs(vs)
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("ViolatingTIDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ViolatingTIDs = %v, want %v", got, want)
		}
	}
}

func TestIncDetect(t *testing.T) {
	r := custData(t)
	c := MustParse("cust([CC='44', ZIP] -> [STR])", r.Schema())
	// Insert a new conflicting UK tuple.
	tid := r.MustInsert(strTuple("44", "131", "7777777", "eve", "WRONG ST", "edi", "EH4 8LE"))
	pli := relation.BuildPLI(r, c.LHS())
	vs := IncDetect(r, c, pli, []int{tid})
	if len(vs) != 1 || vs[0].Kind != VarViolation {
		t.Fatalf("IncDetect = %v", vs)
	}
	// The group must contain the new tuple and the existing ones.
	if len(vs[0].TIDs) != 3 {
		t.Errorf("group TIDs = %v, want 3 tuples", vs[0].TIDs)
	}
	// Full detection agrees.
	full, _ := DetectOne(r, c)
	if len(full) != 1 || full[0].Kind != VarViolation {
		t.Errorf("full detect = %v", full)
	}
}

func TestIncDetectUntouchedGroupIgnored(t *testing.T) {
	r := custData(t)
	c := MustParse("cust([CC='44', ZIP] -> [STR])", r.Schema())
	// Corrupt an existing group...
	r.Set(1, r.Schema().MustIndex("STR"), relation.String("corrupt"))
	// ...but only ask about a new tuple in a different group.
	tid := r.MustInsert(strTuple("44", "131", "9", "zed", "new st", "edi", "NEW ZIP"))
	pli := relation.BuildPLI(r, c.LHS())
	vs := IncDetect(r, c, pli, []int{tid})
	if len(vs) != 0 {
		t.Errorf("IncDetect should ignore untouched groups: %v", vs)
	}
}

func TestNormalize(t *testing.T) {
	s := custSchema(t)
	c := MustParse("cfd phi2: cust([CC='01', AC='908', PN] -> [STR, CT='mh', ZIP])", s)
	ns := c.Normalize()
	if len(ns) != 3 {
		t.Fatalf("normalize count = %d", len(ns))
	}
	for _, n := range ns {
		if len(n.RHS()) != 1 {
			t.Errorf("normalized CFD has RHS %v", n.RHSNames())
		}
		if n.Rows() != 1 {
			t.Errorf("normalized CFD rows = %d", n.Rows())
		}
	}
	// Detection semantics preserved: violations of the original equal the
	// union over the normalized ones.
	r := custData(t)
	r.Set(4, s.MustIndex("CT"), relation.String("nyc"))
	orig, _ := DetectOne(r, c)
	var split []Violation
	for _, n := range ns {
		vs, _ := DetectOne(r, n)
		split = append(split, vs...)
	}
	if len(ViolatingTIDs(orig)) != len(ViolatingTIDs(split)) {
		t.Errorf("normalize changed detection: %v vs %v", orig, split)
	}
}

func TestString(t *testing.T) {
	s := custSchema(t)
	c := MustParse("cfd phi1: cust([CC='44', ZIP] -> [STR])", s)
	out := c.String()
	if !strings.Contains(out, "phi1") || !strings.Contains(out, "'44'") || !strings.Contains(out, "->") {
		t.Errorf("String() = %s", out)
	}
}
