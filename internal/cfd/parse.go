package cfd

import (
	"fmt"
	"strings"

	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// Parse reads a CFD in the textual syntax:
//
//	cfd name: rel([A='c1', B] -> [C, D='c2'])
//	cfd name: rel([A, B] -> [C]) { ('44', _ || _), ('01', '908' || 'mh') }
//
// The "cfd name:" prefix is optional. Inline constants in the attribute
// lists define a single pattern row; an explicit tableau in braces
// overrides (mixing both is an error). String constants are quoted with
// single quotes; numeric constants are bare and typed by the attribute's
// declared kind; "_" is the wildcard.
func Parse(input string, schema *relation.Schema) (*CFD, error) {
	p := &parser{src: input}
	c, err := p.parseCFD(schema)
	if err != nil {
		return nil, fmt.Errorf("cfd: parsing %q: %w", input, err)
	}
	return c, nil
}

// MustParse is Parse panicking on error, for statically known constraint
// literals in tests, examples and generators.
func MustParse(input string, schema *relation.Schema) *CFD {
	c, err := Parse(input, schema)
	if err != nil {
		panic(err)
	}
	return c
}

// ParseSet parses a newline- or semicolon-separated list of CFDs into a
// Set. Blank lines and lines starting with # are ignored.
func ParseSet(input string, schema *relation.Schema) (*Set, error) {
	set := NewSet(schema)
	for _, line := range splitStatements(input) {
		c, err := Parse(line, schema)
		if err != nil {
			return nil, err
		}
		if err := set.Add(c); err != nil {
			return nil, err
		}
	}
	return set, nil
}

func splitStatements(input string) []string {
	var out []string
	for _, chunk := range strings.Split(input, "\n") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" || strings.HasPrefix(chunk, "#") {
			continue
		}
		for _, stmt := range strings.Split(chunk, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt != "" {
				out = append(out, stmt)
			}
		}
	}
	return out
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) eat(c byte) bool {
	p.skipSpace()
	if p.peek() == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(c byte) error {
	if !p.eat(c) {
		return p.errf("expected %q", string(c))
	}
	return nil
}

func (p *parser) eatWord(w string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], w) {
		end := p.pos + len(w)
		if end == len(p.src) || !isIdentChar(p.src[end]) {
			p.pos = end
			return true
		}
	}
	return false
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '#' || c == '.' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

// token reads a pattern token: '_', a 'quoted string', or a bare literal
// up to a delimiter.
func (p *parser) patternToken() (string, error) {
	p.skipSpace()
	if p.peek() == '\'' {
		start := p.pos
		p.pos++
		for p.pos < len(p.src) && p.src[p.pos] != '\'' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return "", p.errf("unterminated string constant")
		}
		p.pos++
		return p.src[start:p.pos], nil
	}
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) || p.peek() == '-' || p.peek() == '+' {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected pattern value")
	}
	return p.src[start:p.pos], nil
}

// attrSpec is an attribute name with an optional inline constant.
type attrSpec struct {
	name string
	pat  pattern.Value
	has  bool
}

func (p *parser) attrList(schema *relation.Schema) ([]attrSpec, error) {
	if err := p.expect('['); err != nil {
		return nil, err
	}
	var specs []attrSpec
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		idx, ok := schema.Index(name)
		if !ok {
			return nil, p.errf("schema %s has no attribute %q", schema.Name(), name)
		}
		spec := attrSpec{name: name}
		if p.eat('=') {
			tok, err := p.patternToken()
			if err != nil {
				return nil, err
			}
			pv, err := pattern.ParseValue(tok, schema.Attr(idx).Kind)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			if pv.IsWild() {
				return nil, p.errf("inline pattern for %s must be a constant", name)
			}
			spec.pat, spec.has = pv, true
		}
		specs = append(specs, spec)
		if p.eat(',') {
			continue
		}
		if err := p.expect(']'); err != nil {
			return nil, err
		}
		return specs, nil
	}
}

func (p *parser) parseCFD(schema *relation.Schema) (*CFD, error) {
	name := ""
	if p.eatWord("cfd") {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(':'); err != nil {
			return nil, err
		}
		name = n
	}
	relName, err := p.ident()
	if err != nil {
		return nil, err
	}
	if relName != schema.Name() {
		return nil, p.errf("CFD is over relation %q, schema is %q", relName, schema.Name())
	}
	if err := p.expect('('); err != nil {
		return nil, err
	}
	lhsSpecs, err := p.attrList(schema)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], "->") {
		return nil, p.errf("expected ->")
	}
	p.pos += 2
	rhsSpecs, err := p.attrList(schema)
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}

	lhsNames := make([]string, len(lhsSpecs))
	for i, s := range lhsSpecs {
		lhsNames[i] = s.name
	}
	rhsNames := make([]string, len(rhsSpecs))
	for i, s := range rhsSpecs {
		rhsNames[i] = s.name
	}

	var tableau pattern.Tableau
	hasInline := false
	for _, s := range append(append([]attrSpec(nil), lhsSpecs...), rhsSpecs...) {
		if s.has {
			hasInline = true
		}
	}

	p.skipSpace()
	if p.peek() == '{' {
		if hasInline {
			return nil, p.errf("cannot mix inline constants with an explicit tableau")
		}
		tableau, err = p.tableau(schema, lhsNames, rhsNames)
		if err != nil {
			return nil, err
		}
	} else {
		row := make(pattern.Row, len(lhsSpecs)+len(rhsSpecs))
		for i, s := range lhsSpecs {
			if s.has {
				row[i] = s.pat
			} else {
				row[i] = pattern.Wild()
			}
		}
		for i, s := range rhsSpecs {
			if s.has {
				row[len(lhsSpecs)+i] = s.pat
			} else {
				row[len(lhsSpecs)+i] = pattern.Wild()
			}
		}
		tableau = pattern.Tableau{row}
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("unexpected trailing input %q", p.src[p.pos:])
	}
	return New(name, schema, lhsNames, rhsNames, tableau)
}

func (p *parser) tableau(schema *relation.Schema, lhsNames, rhsNames []string) (pattern.Tableau, error) {
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	lhsIdx, err := schema.Indexes(lhsNames...)
	if err != nil {
		return nil, err
	}
	rhsIdx, err := schema.Indexes(rhsNames...)
	if err != nil {
		return nil, err
	}
	var tb pattern.Tableau
	for {
		if err := p.expect('('); err != nil {
			return nil, err
		}
		row := make(pattern.Row, 0, len(lhsIdx)+len(rhsIdx))
		// LHS patterns
		for i := range lhsIdx {
			tok, err := p.patternToken()
			if err != nil {
				return nil, err
			}
			pv, err := pattern.ParseValue(tok, schema.Attr(lhsIdx[i]).Kind)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			row = append(row, pv)
			if i < len(lhsIdx)-1 {
				if err := p.expect(','); err != nil {
					return nil, err
				}
			}
		}
		p.skipSpace()
		if !strings.HasPrefix(p.src[p.pos:], "||") {
			return nil, p.errf("expected || between LHS and RHS patterns")
		}
		p.pos += 2
		for i := range rhsIdx {
			tok, err := p.patternToken()
			if err != nil {
				return nil, err
			}
			pv, err := pattern.ParseValue(tok, schema.Attr(rhsIdx[i]).Kind)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			row = append(row, pv)
			if i < len(rhsIdx)-1 {
				if err := p.expect(','); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		tb = append(tb, row)
		if p.eat(',') {
			continue
		}
		if err := p.expect('}'); err != nil {
			return nil, err
		}
		return tb, nil
	}
}
