package cfd

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"semandaq/internal/relation"
)

// legacyDetectOne is a frozen copy of the pre-PLI detection algorithm:
// partition by string-encoded X keys with relation.BuildIndex, visit
// keys in sorted order, compare values with pattern.Matches and
// Value.Identical. The PLI-based Detect must reproduce its output
// byte-for-byte; this reference is what the acceptance test diffs
// against.
func legacyDetectOne(r *relation.Relation, c *CFD) []Violation {
	idx := relation.BuildIndex(r, c.lhs)
	var out []Violation
	nl := len(c.lhs)
	for _, key := range idx.Keys() {
		tids := idx.LookupKey(key)
		if len(tids) == 0 {
			continue
		}
		rep := r.Tuple(tids[0])
		for rowIdx, row := range c.tableau {
			if !row[:nl].Matches(rep, c.lhs) {
				continue
			}
			for j, attr := range c.rhs {
				p := row[nl+j]
				if p.IsConst() {
					for _, tid := range tids {
						if !p.Matches(r.Tuple(tid)[attr]) {
							out = append(out, Violation{
								CFD: c, Row: rowIdx, Kind: ConstViolation,
								Attr: attr, TIDs: []int{tid},
							})
						}
					}
					continue
				}
				if len(tids) < 2 {
					continue
				}
				first := r.Tuple(tids[0])[attr]
				conflict := false
				for _, tid := range tids[1:] {
					if !r.Tuple(tid)[attr].Identical(first) {
						conflict = true
						break
					}
				}
				if conflict {
					group := append([]int(nil), tids...)
					sort.Ints(group)
					out = append(out, Violation{
						CFD: c, Row: rowIdx, Kind: VarViolation,
						Attr: attr, TIDs: group,
					})
				}
			}
		}
	}
	return out
}

func legacyDetectSet(r *relation.Relation, set *Set) []Violation {
	var out []Violation
	for _, c := range set.All() {
		out = append(out, legacyDetectOne(r, c)...)
	}
	return out
}

// mixedRelationAndSet builds a randomized relation over mixed-kind
// columns plus a CFD set exercising constant LHS/RHS patterns on every
// kind, wildcard RHS, and multi-attribute keys. Noise comes from random
// Set writes, including kind-mismatched ones (float written into the
// int column), so code-vs-Identical divergences are actually present.
func mixedRelationAndSet(t *testing.T, seed int64, n int) (*relation.Relation, *Set) {
	t.Helper()
	schema := relation.MustSchema("mx",
		relation.Attribute{Name: "A", Kind: relation.KindString},
		relation.Attribute{Name: "B", Kind: relation.KindInt},
		relation.Attribute{Name: "C", Kind: relation.KindFloat},
		relation.Attribute{Name: "D", Kind: relation.KindString},
		relation.Attribute{Name: "E", Kind: relation.KindString},
	)
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(schema)
	as := []string{"x", "y", "z"}
	ds := []string{"d0", "d1", "d2", "d3", "d4", "d5"}
	es := []string{"e0", "e1", "e2"}
	for i := 0; i < n; i++ {
		var c relation.Value
		if rng.Intn(2) == 0 {
			c = relation.Int(int64(rng.Intn(3))) // coerced into the float column
		} else {
			c = relation.Float(float64(rng.Intn(3)) + 0.5)
		}
		var b relation.Value
		if rng.Intn(12) == 0 {
			b = relation.Null()
		} else {
			b = relation.Int(int64(rng.Intn(4)))
		}
		r.MustInsert(relation.Tuple{
			relation.String(as[rng.Intn(len(as))]),
			b,
			c,
			relation.String(ds[rng.Intn(len(ds))]),
			relation.String(es[rng.Intn(len(es))]),
		})
	}
	for k := 0; k < n/5; k++ {
		tid := rng.Intn(n)
		switch rng.Intn(4) {
		case 0:
			r.Set(tid, 3, relation.String(ds[rng.Intn(len(ds))]))
		case 1:
			r.Set(tid, 4, relation.String(es[rng.Intn(len(es))]))
		case 2:
			// Identical-but-differently-coded value in the int column:
			// Float(k) where Int(k) values already live.
			r.Set(tid, 1, relation.Float(float64(rng.Intn(4))))
		case 3:
			r.Set(tid, 2, relation.Float(float64(rng.Intn(3))))
		}
	}
	set := NewSet(schema)
	set.MustAdd(MustParse("mx([A, B] -> [D])", schema))
	set.MustAdd(MustParse("mx([A='x', D] -> [E='e1'])", schema))
	set.MustAdd(MustParse("mx([B=2, A] -> [D='d3', E])", schema))
	set.MustAdd(MustParse("mx([C, A] -> [E])", schema))
	set.MustAdd(MustParse("mx([D] -> [B=1])", schema))
	return r, set
}

// TestDetectMatchesLegacy is the acceptance criterion of the columnar
// refactor: on randomized mixed-kind relations, the PLI-based Detect and
// DetectParallel return violation lists byte-identical to the legacy
// string-key implementation.
func TestDetectMatchesLegacy(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		r, set := mixedRelationAndSet(t, seed, 400)
		want := legacyDetectSet(r, set)
		d := NewDetector(set)
		got, err := d.Detect(r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: PLI Detect diverges from legacy detection\n got %d violations\nwant %d violations",
				seed, len(got), len(want))
		}
		for _, workers := range []int{2, 3, 8} {
			gotP, err := d.DetectParallel(r, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotP, want) {
				t.Fatalf("seed %d workers %d: DetectParallel diverges from legacy detection", seed, workers)
			}
		}
		// Detection through a warm cache after an unrelated edit must
		// still agree (stale entries rebuilt, fresh ones reused).
		r.Set(0, 4, relation.String("edited-e"))
		want = legacyDetectSet(r, set)
		got, err = d.Detect(r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: post-edit Detect through warm cache diverges from legacy", seed)
		}
	}
}

// TestDetectOnCustWorkload pins the equivalence on the paper's benchmark
// workload shape as well (string-only columns, Zipf groups).
func TestDetectOnCustWorkload(t *testing.T) {
	r := noisyCust(t, 2000, 23)
	set := noisyCustSet(t, r.Schema())
	want := legacyDetectSet(r, set)
	got, err := NewDetector(set).Detect(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cust workload: PLI Detect diverges from legacy (%d vs %d violations)", len(got), len(want))
	}
}

// legacyIncDetect reproduces the pre-PLI incremental detection, which
// visited touched groups in map order; results are compared as sorted
// multisets since that order was never deterministic.
func legacyIncDetect(r *relation.Relation, c *CFD, tids []int) []Violation {
	idx := relation.BuildIndex(r, c.lhs)
	only := make(map[int]bool, len(tids))
	touched := make(map[string][]int)
	for _, tid := range tids {
		only[tid] = true
		key := r.Tuple(tid).Key(idx.Attrs())
		touched[key] = idx.LookupKey(key)
	}
	var out []Violation
	nl := len(c.lhs)
	for _, groupTIDs := range touched {
		if len(groupTIDs) == 0 {
			continue
		}
		rep := r.Tuple(groupTIDs[0])
		for rowIdx, row := range c.tableau {
			if !row[:nl].Matches(rep, c.lhs) {
				continue
			}
			for j, attr := range c.rhs {
				p := row[nl+j]
				if p.IsConst() {
					for _, tid := range groupTIDs {
						if only[tid] && !p.Matches(r.Tuple(tid)[attr]) {
							out = append(out, Violation{
								CFD: c, Row: rowIdx, Kind: ConstViolation,
								Attr: attr, TIDs: []int{tid},
							})
						}
					}
					continue
				}
				if len(groupTIDs) < 2 {
					continue
				}
				first := r.Tuple(groupTIDs[0])[attr]
				conflict := false
				for _, tid := range groupTIDs[1:] {
					if !r.Tuple(tid)[attr].Identical(first) {
						conflict = true
						break
					}
				}
				if conflict {
					group := append([]int(nil), groupTIDs...)
					sort.Ints(group)
					out = append(out, Violation{
						CFD: c, Row: rowIdx, Kind: VarViolation,
						Attr: attr, TIDs: group,
					})
				}
			}
		}
	}
	return out
}

func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		for k := 0; k < len(a.TIDs) && k < len(b.TIDs); k++ {
			if a.TIDs[k] != b.TIDs[k] {
				return a.TIDs[k] < b.TIDs[k]
			}
		}
		return len(a.TIDs) < len(b.TIDs)
	})
}

func TestIncDetectMatchesLegacy(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		r, set := mixedRelationAndSet(t, seed+50, 300)
		rng := rand.New(rand.NewSource(seed))
		var delta []int
		for len(delta) < 20 {
			delta = append(delta, rng.Intn(r.Len()))
		}
		for _, c := range set.All() {
			want := legacyIncDetect(r, c, delta)
			pli := relation.BuildPLI(r, c.LHS())
			got := IncDetect(r, c, pli, delta)
			sortViolations(want)
			sortViolations(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d cfd %s: IncDetect diverges from legacy (%d vs %d violations)",
					seed, c.Name(), len(got), len(want))
			}
		}
	}
}

// TestDetectSignedZero pins the signed-zero regression: -0.0 == 0.0
// (Identical) but renders differently, so if negative zero survived into
// storage it would intern under its own code and the constant-RHS code
// fast path would report a violation legacy detection does not. Float()
// normalizes -0.0 away; both detectors must agree on zero violations.
func TestDetectSignedZero(t *testing.T) {
	schema := relation.MustSchema("z",
		relation.Attribute{Name: "K", Kind: relation.KindString},
		relation.Attribute{Name: "F", Kind: relation.KindFloat},
	)
	r := relation.New(schema)
	r.MustInsert(relation.Tuple{relation.String("g"), relation.Float(0)})
	r.MustInsert(relation.Tuple{relation.String("g"), relation.Float(math.Copysign(0, -1))})
	negZeroParsed, err := relation.ParseValue("-0", relation.KindFloat)
	if err != nil {
		t.Fatal(err)
	}
	r.MustInsert(relation.Tuple{relation.String("g"), negZeroParsed})
	set := NewSet(schema)
	set.MustAdd(MustParse("z([K='g'] -> [F=0])", schema))
	set.MustAdd(MustParse("z([K] -> [F])", schema))

	want := legacyDetectSet(r, set)
	got, err := NewDetector(set).Detect(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("signed zero: PLI %d violations vs legacy %d", len(got), len(want))
	}
	if len(got) != 0 {
		t.Fatalf("0.0 and -0.0 are Identical; got %d violations", len(got))
	}
	// All three zeros must share one code.
	if r.Code(0, 1) != r.Code(1, 1) || r.Code(0, 1) != r.Code(2, 1) {
		t.Fatalf("negative zero interned under its own code")
	}
}
