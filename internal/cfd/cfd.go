// Package cfd implements conditional functional dependencies (CFDs) as
// introduced by Fan, Geerts, Jia and Kementsietsidis (TODS 2008) and
// presented in §3 of the VLDB 2008 tutorial "A Revival of Integrity
// Constraints for Data Cleaning".
//
// A CFD φ = (R: X → Y, Tp) is a standard functional dependency X → Y
// embedded with a pattern tableau Tp over X ∪ Y. Each pattern row
// restricts where the dependency applies (constants on X) and what value
// combinations must occur (constants on Y). The package provides:
//
//   - the CFD data type with a textual syntax and parser,
//   - satisfaction checking and native violation detection (both the
//     single-tuple "constant" violations and the two-tuple "variable"
//     violations),
//   - the classical static analyses: consistency (satisfiability),
//     implication, and minimal cover, and
//   - the eCFD extension of Bravo et al. (ICDE 2008) with disjunction and
//     negation in patterns.
package cfd

import (
	"fmt"
	"strings"

	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// CFD is a conditional functional dependency (R: X → Y, Tp).
type CFD struct {
	name    string
	schema  *relation.Schema
	lhs     []int           // positions of X in schema order of declaration
	rhs     []int           // positions of Y
	tableau pattern.Tableau // rows of width len(lhs)+len(rhs): X patterns then Y patterns
}

// New constructs a CFD over schema with the given X and Y attribute names
// and pattern tableau. Every tableau row must have width |X|+|Y|; X and Y
// must be disjoint, non-empty attribute lists.
func New(name string, schema *relation.Schema, lhsNames, rhsNames []string, tableau pattern.Tableau) (*CFD, error) {
	if len(lhsNames) == 0 || len(rhsNames) == 0 {
		return nil, fmt.Errorf("cfd %s: X and Y must be non-empty", name)
	}
	lhs, err := schema.Indexes(lhsNames...)
	if err != nil {
		return nil, fmt.Errorf("cfd %s: %w", name, err)
	}
	rhs, err := schema.Indexes(rhsNames...)
	if err != nil {
		return nil, fmt.Errorf("cfd %s: %w", name, err)
	}
	seen := map[int]bool{}
	for _, i := range lhs {
		if seen[i] {
			return nil, fmt.Errorf("cfd %s: duplicate attribute %s in X", name, schema.Attr(i).Name)
		}
		seen[i] = true
	}
	for _, i := range rhs {
		if seen[i] {
			return nil, fmt.Errorf("cfd %s: attribute %s appears in both X and Y (or twice in Y)", name, schema.Attr(i).Name)
		}
		seen[i] = true
	}
	if len(tableau) == 0 {
		// A CFD with an empty tableau is the plain FD: one all-wildcard row.
		row := make(pattern.Row, len(lhs)+len(rhs))
		tableau = pattern.Tableau{row}
	}
	if err := tableau.Validate(len(lhs) + len(rhs)); err != nil {
		return nil, fmt.Errorf("cfd %s: %w", name, err)
	}
	return &CFD{
		name:    name,
		schema:  schema,
		lhs:     lhs,
		rhs:     rhs,
		tableau: tableau.Clone(),
	}, nil
}

// Name returns the CFD's identifier (possibly empty).
func (c *CFD) Name() string { return c.name }

// Schema returns the schema the CFD is defined over.
func (c *CFD) Schema() *relation.Schema { return c.schema }

// LHS returns the positions of the X attributes.
func (c *CFD) LHS() []int { return append([]int(nil), c.lhs...) }

// RHS returns the positions of the Y attributes.
func (c *CFD) RHS() []int { return append([]int(nil), c.rhs...) }

// LHSNames returns the X attribute names.
func (c *CFD) LHSNames() []string { return c.attrNames(c.lhs) }

// RHSNames returns the Y attribute names.
func (c *CFD) RHSNames() []string { return c.attrNames(c.rhs) }

func (c *CFD) attrNames(idxs []int) []string {
	out := make([]string, len(idxs))
	for i, idx := range idxs {
		out[i] = c.schema.Attr(idx).Name
	}
	return out
}

// Tableau returns a copy of the pattern tableau.
func (c *CFD) Tableau() pattern.Tableau { return c.tableau.Clone() }

// Rows returns the number of pattern rows.
func (c *CFD) Rows() int { return len(c.tableau) }

// RowLHS returns the X part of tableau row i.
func (c *CFD) RowLHS(i int) pattern.Row { return c.tableau[i][:len(c.lhs)] }

// RowRHS returns the Y part of tableau row i.
func (c *CFD) RowRHS(i int) pattern.Row { return c.tableau[i][len(c.lhs):] }

// IsFD reports whether the CFD degenerates to a plain functional
// dependency (a single all-wildcard row).
func (c *CFD) IsFD() bool {
	return len(c.tableau) == 1 && c.tableau[0].AllWild()
}

// Normalize returns an equivalent set of CFDs each with a single RHS
// attribute, the normal form assumed by the reasoning algorithms of
// TODS 2008.
func (c *CFD) Normalize() []*CFD {
	if len(c.rhs) == 1 {
		return []*CFD{c}
	}
	out := make([]*CFD, len(c.rhs))
	for j := range c.rhs {
		tb := make(pattern.Tableau, len(c.tableau))
		for i, row := range c.tableau {
			nr := make(pattern.Row, len(c.lhs)+1)
			copy(nr, row[:len(c.lhs)])
			nr[len(c.lhs)] = row[len(c.lhs)+j]
			tb[i] = nr
		}
		name := c.name
		if name != "" {
			name = fmt.Sprintf("%s.%d", c.name, j)
		}
		nc, err := New(name, c.schema, c.LHSNames(), []string{c.schema.Attr(c.rhs[j]).Name}, tb)
		if err != nil {
			// New cannot fail here: attribute lists and widths are derived
			// from a CFD that already validated.
			panic(fmt.Sprintf("cfd: normalize invariant violated: %v", err))
		}
		out[j] = nc
	}
	return out
}

// Reduce returns a CFD with a subsumption-reduced tableau (same
// semantics, possibly fewer rows).
func (c *CFD) Reduce() *CFD {
	out := *c
	out.tableau = c.tableau.Reduce()
	return &out
}

// Satisfies reports whether relation r satisfies the CFD. It is a
// convenience wrapper over Detect returning no violations.
func (c *CFD) Satisfies(r *relation.Relation) (bool, error) {
	v, err := DetectOne(r, c)
	if err != nil {
		return false, err
	}
	return len(v) == 0, nil
}

// String renders the CFD in the package's textual syntax, e.g.
//
//	cfd phi: cust([CC, ZIP] -> [STR]) { ('44', _ || _) }
func (c *CFD) String() string {
	var b strings.Builder
	if c.name != "" {
		b.WriteString("cfd ")
		b.WriteString(c.name)
		b.WriteString(": ")
	}
	b.WriteString(c.schema.Name())
	b.WriteString("([")
	b.WriteString(strings.Join(c.LHSNames(), ", "))
	b.WriteString("] -> [")
	b.WriteString(strings.Join(c.RHSNames(), ", "))
	b.WriteString("]) { ")
	for i, row := range c.tableau {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, p := range row {
			if j == len(c.lhs) {
				b.WriteString(" || ")
			} else if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
		b.WriteByte(')')
	}
	b.WriteString(" }")
	return b.String()
}

// Set is an ordered collection of CFDs over a common schema.
type Set struct {
	schema *relation.Schema
	cfds   []*CFD
}

// NewSet creates a CFD set over the given schema.
func NewSet(schema *relation.Schema) *Set {
	return &Set{schema: schema}
}

// Add appends a CFD; it must be over the set's schema.
func (s *Set) Add(c *CFD) error {
	if !c.schema.Equal(s.schema) {
		return fmt.Errorf("cfd: adding CFD over %s to set over %s", c.schema.Name(), s.schema.Name())
	}
	s.cfds = append(s.cfds, c)
	return nil
}

// MustAdd appends a CFD and panics on schema mismatch.
func (s *Set) MustAdd(c *CFD) {
	if err := s.Add(c); err != nil {
		panic(err)
	}
}

// Schema returns the set's schema.
func (s *Set) Schema() *relation.Schema { return s.schema }

// Len returns the number of CFDs.
func (s *Set) Len() int { return len(s.cfds) }

// CFD returns the i-th CFD.
func (s *Set) CFD(i int) *CFD { return s.cfds[i] }

// All returns the CFDs in order (a copy of the slice).
func (s *Set) All() []*CFD { return append([]*CFD(nil), s.cfds...) }

// TotalRows returns the total number of pattern rows across the set, the
// size measure used in the tableau-size experiments.
func (s *Set) TotalRows() int {
	n := 0
	for _, c := range s.cfds {
		n += len(c.tableau)
	}
	return n
}

// String renders all CFDs, one per line.
func (s *Set) String() string {
	lines := make([]string, len(s.cfds))
	for i, c := range s.cfds {
		lines[i] = c.String()
	}
	return strings.Join(lines, "\n")
}
