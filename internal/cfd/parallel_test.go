package cfd

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"semandaq/internal/relation"
)

// noisyCust builds a pseudo-random customer instance with planted
// violations of both kinds: zip groups that disagree on street
// (variable) and 908 rows with a wrong city (constant). Deterministic
// in the seed.
func noisyCust(t testing.TB, n int, seed int64) *relation.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s, err := relation.StringSchema("cust", "CC", "AC", "PN", "NM", "STR", "CT", "ZIP")
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	for i := 0; i < n; i++ {
		zip := fmt.Sprintf("EH%d", rng.Intn(n/4+1))
		street := "st-" + zip
		city := "mh"
		if rng.Float64() < 0.1 {
			street = fmt.Sprintf("noise-%d", i) // variable violations under phi1
		}
		if rng.Float64() < 0.05 {
			city = "nyc" // constant violations under phi2
		}
		cc, ac := "44", "131"
		if i%3 == 0 {
			cc, ac = "01", "908"
		}
		r.MustInsert(relation.Tuple{
			relation.String(cc), relation.String(ac),
			relation.String(fmt.Sprintf("%07d", i)), relation.String("nm"),
			relation.String(street), relation.String(city), relation.String(zip),
		})
	}
	return r
}

func noisyCustSet(t testing.TB, schema *relation.Schema) *Set {
	t.Helper()
	set, err := ParseSet(`
cfd phi1: cust([CC='44', ZIP] -> [STR])
cfd phi2: cust([CC='01', AC='908', PN] -> [CT='mh'])
`, schema)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestDetectParallelMatchesSerial is the determinism contract: for any
// worker count the parallel detector returns the exact slice the serial
// detector returns — same violations, same order.
func TestDetectParallelMatchesSerial(t *testing.T) {
	r := noisyCust(t, 2_000, 7)
	set := noisyCustSet(t, r.Schema())
	d := NewDetector(set)
	want, err := d.Detect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture has no violations; the test would be vacuous")
	}
	for _, workers := range []int{0, 1, 2, 3, 5, 8, 64} {
		got, err := d.DetectParallel(r, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: parallel result diverges from serial (%d vs %d violations)",
				workers, len(got), len(want))
		}
	}
}

// TestDetectParallelRepeatable re-runs the parallel detector and
// requires identical output every time (no map-order leakage).
func TestDetectParallelRepeatable(t *testing.T) {
	r := noisyCust(t, 1_000, 11)
	set := noisyCustSet(t, r.Schema())
	d := NewDetector(set)
	first, err := d.DetectParallel(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := d.DetectParallel(r, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("run %d produced a different violation list", i)
		}
	}
}

// TestDetectGroupsPartition checks the partitioning identity
// DetectGroups is built on: detection over any chunking of the sorted
// group range, concatenated in order, equals full detection.
func TestDetectGroupsPartition(t *testing.T) {
	r := noisyCust(t, 500, 13)
	set := noisyCustSet(t, r.Schema())
	c := set.CFD(0)
	pli := relation.BuildPLI(r, c.lhs)
	n := pli.NumGroups()
	want := DetectGroups(r, c, pli, 0, n)
	for _, chunks := range []int{2, 3, 7} {
		var got []Violation
		size := (n + chunks - 1) / chunks
		for lo := 0; lo < n; lo += size {
			hi := lo + size
			if hi > n {
				hi = n
			}
			got = append(got, DetectGroups(r, c, pli, lo, hi)...)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("chunks=%d: concatenated chunk results diverge from full detection", chunks)
		}
	}
}

func TestDetectParallelSchemaMismatch(t *testing.T) {
	r := noisyCust(t, 10, 17)
	other, err := relation.StringSchema("other", "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	set := NewSet(other)
	set.MustAdd(MustParse("other([A] -> [B])", other))
	if _, err := NewDetector(set).DetectParallel(r, 4); err == nil {
		t.Error("schema mismatch should fail")
	}
}

func TestDetectParallelEmpty(t *testing.T) {
	s, err := relation.StringSchema("cust", "CC", "AC", "PN", "NM", "STR", "CT", "ZIP")
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	set := noisyCustSet(t, s)
	vs, err := NewDetector(set).DetectParallel(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("empty relation produced %d violations", len(vs))
	}
}
