package cfd

import (
	"fmt"
	"sort"

	"semandaq/internal/relation"
)

// DetectNaive is the textbook quadratic detector used as the ablation
// baseline for the grouped algorithm of DetectOne: it checks every tuple
// against every pattern row for constant violations, and every PAIR of
// tuples against every row for variable violations — O(|Tp|·|D|²)
// instead of O(|D| + groups·|Tp|). The reported violation set is
// identical (verified by tests), only the cost differs; benchmark
// BenchmarkAblationGroupedVsNaive quantifies the gap.
func DetectNaive(r *relation.Relation, c *CFD) ([]Violation, error) {
	if !r.Schema().Equal(c.schema) {
		return nil, fmt.Errorf("cfd: detecting %s over relation %s with schema %s",
			c.name, r.Schema().Name(), c.schema.Name())
	}
	nl := len(c.lhs)
	var out []Violation

	// Constant violations: per tuple, per row.
	for tid, t := range r.Tuples() {
		for rowIdx, row := range c.tableau {
			if !row[:nl].Matches(t, c.lhs) {
				continue
			}
			for j, attr := range c.rhs {
				p := row[nl+j]
				if p.IsConst() && !p.Matches(t[attr]) {
					out = append(out, Violation{
						CFD: c, Row: rowIdx, Kind: ConstViolation,
						Attr: attr, TIDs: []int{tid},
					})
				}
			}
		}
	}

	// Variable violations: per pair, per row; conflicting pairs are
	// accumulated into the same X-group report DetectOne produces.
	type groupKey struct {
		row  int
		attr int
		key  string
	}
	groups := map[groupKey]map[int]bool{}
	for i := 0; i < r.Len(); i++ {
		ti := r.Tuple(i)
		for j := i + 1; j < r.Len(); j++ {
			tj := r.Tuple(j)
			if !ti.EqualOn(tj, c.lhs) {
				continue
			}
			for rowIdx, row := range c.tableau {
				if !row[:nl].Matches(ti, c.lhs) {
					continue
				}
				for k, attr := range c.rhs {
					p := row[nl+k]
					if !p.IsWild() {
						continue
					}
					if !ti[attr].Identical(tj[attr]) {
						gk := groupKey{rowIdx, attr, ti.Key(c.lhs)}
						if groups[gk] == nil {
							groups[gk] = map[int]bool{}
						}
						groups[gk][i] = true
						groups[gk][j] = true
					}
				}
			}
		}
	}
	// A conflicting pair implicates its whole X-group (as DetectOne
	// reports); collect the remaining members.
	for gk, members := range groups {
		var rep relation.Tuple
		for tid := range members {
			rep = r.Tuple(tid)
			break
		}
		for tid, t := range r.Tuples() {
			if !members[tid] && t.EqualOn(rep, c.lhs) {
				members[tid] = true
			}
		}
		tids := make([]int, 0, len(members))
		for tid := range members {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		out = append(out, Violation{
			CFD: c, Row: gk.row, Kind: VarViolation, Attr: gk.attr, TIDs: tids,
		})
	}
	return out, nil
}
