package cfd

import (
	"fmt"

	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// This file implements CFD propagation through selection-projection
// views, following Fan, Geerts and Jia, "Propagating functional
// dependencies with conditions" (VLDB 2008 — the same proceedings as the
// tutorial): given constraints that hold on a source relation, compute
// constraints guaranteed to hold on a view, so that cleaned sources keep
// their semantics downstream.
//
// The supported view class is σ-π: a conjunction of equality selections
// (attr = constant) followed by a projection. Propagation of a CFD
// (X → Y, tp) proceeds row by row:
//
//   - a row whose constant on a selected attribute CONTRADICTS the
//     selection never applies to view tuples and is dropped;
//   - a wildcard on a selected attribute specializes to the selection
//     constant (every view tuple has it);
//   - X attributes projected away can be removed from the embedded FD
//     when their (specialized) pattern is a constant — the attribute is
//     fixed across the view's scope, so it adds nothing;
//   - rows needing a projected-away attribute with a wildcard pattern do
//     not propagate (the view loses the distinguishing information);
//   - Y attributes must survive the projection.

// View describes a selection-projection view over a source schema.
type View struct {
	Name    string
	Source  *relation.Schema
	Project []string          // projected attribute names, in view order
	Select  map[string]string // attr name -> required constant (strings)
}

// Schema builds the view's output schema.
func (v View) Schema() (*relation.Schema, error) {
	idxs, err := v.Source.Indexes(v.Project...)
	if err != nil {
		return nil, err
	}
	attrs := make([]relation.Attribute, len(idxs))
	for i, idx := range idxs {
		attrs[i] = v.Source.Attr(idx)
	}
	name := v.Name
	if name == "" {
		name = v.Source.Name() + "_view"
	}
	return relation.NewSchema(name, attrs...)
}

// Materialize evaluates the view over an instance of the source.
func (v View) Materialize(r *relation.Relation) (*relation.Relation, error) {
	if !r.Schema().Equal(v.Source) {
		return nil, fmt.Errorf("cfd: view source is %s, relation is %s", v.Source.Name(), r.Schema().Name())
	}
	schema, err := v.Schema()
	if err != nil {
		return nil, err
	}
	proj, err := v.Source.Indexes(v.Project...)
	if err != nil {
		return nil, err
	}
	type selCond struct {
		attr int
		val  relation.Value
	}
	var conds []selCond
	for name, val := range v.Select {
		idx, ok := v.Source.Index(name)
		if !ok {
			return nil, fmt.Errorf("cfd: view selects on unknown attribute %q", name)
		}
		conds = append(conds, selCond{idx, relation.String(val)})
	}
	out := relation.New(schema)
	for _, t := range r.Tuples() {
		keep := true
		for _, c := range conds {
			if !t[c.attr].Identical(c.val) {
				keep = false
				break
			}
		}
		if keep {
			out.MustInsert(t.Project(proj))
		}
	}
	return out, nil
}

// Propagate computes the CFDs over the view implied by the source set:
// for every source CFD and row, the specialized/reduced row when it
// survives selection and projection. The result is sound: any source
// instance satisfying the input set yields a view satisfying the output
// set (property-tested). Completeness for general views is beyond the
// σ-π class (the VLDB 2008 paper handles SPC views with richer
// machinery).
func Propagate(set *Set, v View) (*Set, error) {
	if !set.Schema().Equal(v.Source) {
		return nil, fmt.Errorf("cfd: propagating constraints over %s through a view of %s",
			set.Schema().Name(), v.Source.Name())
	}
	viewSchema, err := v.Schema()
	if err != nil {
		return nil, err
	}
	selIdx := map[int]relation.Value{}
	for name, val := range v.Select {
		idx, ok := v.Source.Index(name)
		if !ok {
			return nil, fmt.Errorf("cfd: view selects on unknown attribute %q", name)
		}
		selIdx[idx] = relation.String(val)
	}
	projPos := map[int]int{} // source attr -> view position
	projIdxs, err := v.Source.Indexes(v.Project...)
	if err != nil {
		return nil, err
	}
	for viewPos, srcIdx := range projIdxs {
		projPos[srcIdx] = viewPos
	}

	out := NewSet(viewSchema)
	for _, c := range set.All() {
		for _, nc := range c.Normalize() {
			rhsAttr := nc.rhs[0]
			rhsView, rhsVisible := projPos[rhsAttr]
			if !rhsVisible {
				continue // the dependent attribute is gone
			}
			for rowIdx, row := range nc.tableau {
				// Specialize against the selection.
				specialized := make(pattern.Row, len(row))
				applicable := true
				for i, p := range row {
					var srcAttr int
					if i < len(nc.lhs) {
						srcAttr = nc.lhs[i]
					} else {
						srcAttr = rhsAttr
					}
					sp := p
					if selVal, selected := selIdx[srcAttr]; selected {
						if p.IsConst() && !p.Constant().Identical(selVal) {
							applicable = false // row never matches view tuples
							break
						}
						sp = pattern.Const(selVal)
					}
					specialized[i] = sp
				}
				if !applicable {
					continue
				}
				// Build the view-side attribute lists.
				var lhsNames []string
				var lhsPats pattern.Row
				ok := true
				for i, srcAttr := range nc.lhs {
					p := specialized[i]
					if viewPos, visible := projPos[srcAttr]; visible {
						lhsNames = append(lhsNames, viewSchema.Attr(viewPos).Name)
						lhsPats = append(lhsPats, p)
						continue
					}
					// Projected away: droppable only when constant (the
					// scope already pins it); a wildcard means the view
					// cannot express the dependency.
					if p.IsWild() {
						ok = false
						break
					}
					// Constant on an invisible attribute: the row's scope
					// on the view silently weakens to "all tuples from
					// sources where attr might differ". That is only
					// sound when the selection pins the attribute.
					if _, selected := selIdx[srcAttr]; !selected {
						ok = false
						break
					}
				}
				if !ok || len(lhsNames) == 0 {
					continue
				}
				name := nc.name
				if name != "" {
					name = fmt.Sprintf("%s@%s.r%d", name, viewSchema.Name(), rowIdx)
				}
				tableauRow := append(lhsPats.Clone(), specialized[len(nc.lhs)])
				pc, err := New(name, viewSchema, lhsNames,
					[]string{viewSchema.Attr(rhsView).Name}, pattern.Tableau{tableauRow})
				if err != nil {
					return nil, err
				}
				out.MustAdd(pc)
			}
		}
	}
	// Selection constants on projected attributes become constant CFDs on
	// the view: every view tuple carries them.
	for srcAttr, val := range selIdx {
		viewPos, visible := projPos[srcAttr]
		if !visible {
			continue
		}
		// Pick any other projected attribute as a trivial LHS; if the
		// view has a single attribute the constraint is expressible as
		// ([A] -> [A]) only, which New rejects — skip that degenerate
		// case.
		var lhsName string
		for _, idx := range projIdxs {
			if idx != srcAttr {
				lhsName = v.Source.Attr(idx).Name
				break
			}
		}
		if lhsName == "" {
			continue
		}
		rowP := pattern.Tableau{{pattern.Wild(), pattern.Const(val)}}
		pc, err := New(fmt.Sprintf("sel_%s", viewSchema.Attr(viewPos).Name),
			viewSchema, []string{lhsName}, []string{viewSchema.Attr(viewPos).Name}, rowP)
		if err != nil {
			return nil, err
		}
		out.MustAdd(pc)
	}
	return out, nil
}
