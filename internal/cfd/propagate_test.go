package cfd

import (
	"math/rand"
	"testing"

	"semandaq/internal/relation"
)

func ukView(t *testing.T) View {
	t.Helper()
	return View{
		Name:    "ukcust",
		Source:  custSchema(t),
		Project: []string{"ZIP", "STR", "CT"},
		Select:  map[string]string{"CC": "44"},
	}
}

func TestViewSchemaAndMaterialize(t *testing.T) {
	v := ukView(t)
	schema, err := v.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if schema.Arity() != 3 || schema.Attr(0).Name != "ZIP" {
		t.Fatalf("view schema = %v", schema)
	}
	r := custData(t)
	view, err := v.Materialize(r)
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() != 3 { // the three CC=44 tuples
		t.Fatalf("view rows = %d, want 3", view.Len())
	}
}

func TestPropagateConditionalBecomesFD(t *testing.T) {
	// phi1: ([CC='44', ZIP] -> [STR]) propagates to the UK view as the
	// plain FD ZIP -> STR — the selection absorbs the condition.
	s := custSchema(t)
	set, err := ParseSet("cfd phi1: cust([CC='44', ZIP] -> [STR])", s)
	if err != nil {
		t.Fatal(err)
	}
	v := ukView(t)
	prop, err := Propagate(set, v)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range prop.All() {
		if len(c.LHSNames()) == 1 && c.LHSNames()[0] == "ZIP" && c.RHSNames()[0] == "STR" {
			found = true
			if !c.RowLHS(0)[0].IsWild() {
				t.Errorf("propagated row should be wildcard on ZIP: %s", c)
			}
		}
	}
	if !found {
		t.Fatalf("ZIP -> STR not propagated; got:\n%s", prop)
	}
}

func TestPropagateContradictingRowDropped(t *testing.T) {
	// A row conditioned on CC='01' can never match UK view tuples.
	s := custSchema(t)
	set, err := ParseSet("cust([CC='01', AC='908', PN] -> [CT='mh'])", s)
	if err != nil {
		t.Fatal(err)
	}
	v := ukView(t)
	prop, err := Propagate(set, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range prop.All() {
		if c.RHSNames()[0] == "CT" && c.Rows() > 0 && c.RowRHS(0)[0].Matches(relation.String("mh")) {
			t.Errorf("contradicting row propagated: %s", c)
		}
	}
}

func TestPropagateLosesWildcardOnProjectedAway(t *testing.T) {
	// ([ZIP, NM] -> [STR]) cannot propagate: NM is projected away with a
	// wildcard pattern.
	s := custSchema(t)
	set, err := ParseSet("cust([ZIP, NM] -> [STR])", s)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := Propagate(set, ukView(t))
	if err != nil {
		t.Fatal(err)
	}
	// Nothing propagates: the NM wildcard blocks the row, and the
	// selected attribute CC is not projected (no selection constant).
	if prop.Len() != 0 {
		t.Fatalf("expected no propagated dependency, got:\n%s", prop)
	}
}

func TestPropagateSelectionConstant(t *testing.T) {
	// When the selected attribute IS projected, the view carries it as a
	// constant CFD.
	s := custSchema(t)
	v := View{
		Name:    "ukwide",
		Source:  s,
		Project: []string{"CC", "ZIP", "STR"},
		Select:  map[string]string{"CC": "44"},
	}
	set := NewSet(s) // no source constraints at all
	prop, err := Propagate(set, v)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range prop.All() {
		if c.RHSNames()[0] == "CC" && c.RowRHS(0)[0].Matches(relation.String("44")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("selection constant not propagated:\n%s", prop)
	}
}

// TestPropagateSoundnessRandomized is the soundness property: whenever a
// random source instance satisfies the source CFDs, the materialized
// view satisfies every propagated CFD.
func TestPropagateSoundnessRandomized(t *testing.T) {
	s := custSchema(t)
	set, err := ParseSet(`
cfd p1: cust([CC='44', ZIP] -> [STR])
cfd p2: cust([CC, AC] -> [CT]) { ('44', '131' || 'edi'), (_, _ || _) }
cfd p3: cust([ZIP] -> [CT])
`, s)
	if err != nil {
		t.Fatal(err)
	}
	views := []View{
		ukView(t),
		{Name: "v2", Source: s, Project: []string{"CC", "AC", "CT", "ZIP", "STR"}, Select: map[string]string{}},
		{Name: "v3", Source: s, Project: []string{"AC", "CT"}, Select: map[string]string{"CC": "44", "ZIP": "Z0"}},
	}
	rng := rand.New(rand.NewSource(19))
	detector := NewDetector(set)
	for trial := 0; trial < 30; trial++ {
		// Generate candidate data, then REPAIR it to satisfy the source
		// set by construction: only satisfying instances matter.
		r := relation.New(s)
		for i := 0; i < 20+rng.Intn(30); i++ {
			r.MustInsert(strTuple(
				[]string{"44", "01"}[rng.Intn(2)],
				[]string{"131", "908"}[rng.Intn(2)],
				"p", "n",
				"st"+string(rune('a'+rng.Intn(2))),
				[]string{"edi", "mh"}[rng.Intn(2)],
				"Z"+string(rune('0'+rng.Intn(2)))))
		}
		vs, err := detector.Detect(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) > 0 {
			// Drop violating tuples until consistent (CFD satisfaction is
			// closed under subsets, so this terminates at a satisfying
			// sub-instance).
			bad := map[int]bool{}
			for _, tid := range ViolatingTIDs(vs) {
				bad[tid] = true
			}
			clean := relation.New(s)
			for tid, tup := range r.Tuples() {
				if !bad[tid] {
					clean.MustInsert(tup)
				}
			}
			r = clean
			if vs2, _ := detector.Detect(r); len(vs2) > 0 {
				// Repeat once more; nested groups can re-violate.
				bad = map[int]bool{}
				for _, tid := range ViolatingTIDs(vs2) {
					bad[tid] = true
				}
				clean = relation.New(s)
				for tid, tup := range r.Tuples() {
					if !bad[tid] {
						clean.MustInsert(tup)
					}
				}
				r = clean
			}
		}
		if ok, _ := NewDetector(set).Detect(r); len(ok) != 0 {
			continue // still dirty; skip the trial
		}
		for _, v := range views {
			prop, err := Propagate(set, v)
			if err != nil {
				t.Fatal(err)
			}
			view, err := v.Materialize(r)
			if err != nil {
				t.Fatal(err)
			}
			pv, err := NewDetector(prop).Detect(view)
			if err != nil {
				t.Fatal(err)
			}
			if len(pv) != 0 {
				t.Fatalf("trial %d view %s: propagated CFDs violated: %v\nsource:\n%s\nprop:\n%s",
					trial, v.Name, pv, set, prop)
			}
		}
	}
}

func TestPropagateErrors(t *testing.T) {
	s := custSchema(t)
	other, _ := relation.StringSchema("other", "A")
	set := NewSet(other)
	if _, err := Propagate(set, ukView(t)); err == nil {
		t.Error("schema mismatch should fail")
	}
	v := View{Source: s, Project: []string{"NOPE"}}
	if _, err := Propagate(NewSet(s), v); err == nil {
		t.Error("unknown projection attribute should fail")
	}
	v2 := View{Source: s, Project: []string{"ZIP"}, Select: map[string]string{"NOPE": "x"}}
	if _, err := Propagate(NewSet(s), v2); err == nil {
		t.Error("unknown selection attribute should fail")
	}
}
