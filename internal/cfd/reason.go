package cfd

import (
	"fmt"

	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// This file implements the classical static analyses of CFDs studied in
// TODS 2008 §3-4: consistency (satisfiability), implication, and minimal
// cover.
//
// Both problems are intractable in general (consistency is NP-complete,
// implication coNP-complete), and both admit small-model properties that
// make a search-based decision procedure complete:
//
//   - a CFD set Σ is satisfiable iff some SINGLE tuple satisfies it
//     (CFD violations survive in sub-instances, so any tuple of any
//     satisfying instance is itself a witness);
//   - Σ does not imply φ iff some instance with at most TWO tuples
//     satisfies Σ and violates φ (a violation involves at most two
//     tuples, and the sub-instance they form still satisfies Σ);
//   - in any such witness, each attribute can be renamed to one of the
//     constants Σ∪{φ} mentions for that attribute or to one of two fresh
//     values, preserving pattern matches and (in)equalities.
//
// The procedures below perform DFS over that finite candidate space with
// pruning after every assignment.

// attrDomain returns the candidate values for one attribute: every
// constant mentioned for it in the given CFDs, plus `fresh` extra values
// distinct from all of them.
func attrDomain(schema *relation.Schema, attr int, sets [][]*CFD, fresh int) []relation.Value {
	seen := map[relation.Value]bool{}
	var out []relation.Value
	for _, cfds := range sets {
		for _, c := range cfds {
			for _, row := range c.tableau {
				for k, p := range row {
					var pos int
					if k < len(c.lhs) {
						pos = c.lhs[k]
					} else {
						pos = c.rhs[k-len(c.lhs)]
					}
					if pos == attr && p.IsConst() && !seen[p.Constant()] {
						seen[p.Constant()] = true
						out = append(out, p.Constant())
					}
				}
			}
		}
	}
	// Fresh values: guaranteed distinct from every constant above.
	switch schema.Attr(attr).Kind {
	case relation.KindInt:
		var hi int64
		for v := range seen {
			if v.Kind() == relation.KindInt && v.IntVal() > hi {
				hi = v.IntVal()
			}
		}
		for i := 1; i <= fresh; i++ {
			out = append(out, relation.Int(hi+int64(i)))
		}
	case relation.KindFloat:
		var hi float64
		for v := range seen {
			if v.FloatVal() > hi {
				hi = v.FloatVal()
			}
		}
		for i := 1; i <= fresh; i++ {
			out = append(out, relation.Float(hi+float64(i)))
		}
	default:
		for i := 1; i <= fresh; i++ {
			candidate := fmt.Sprintf("\x00fresh%d", i)
			for seen[relation.String(candidate)] {
				candidate += "'"
			}
			out = append(out, relation.String(candidate))
		}
	}
	return out
}

// Satisfiable decides consistency of the CFD set: whether some non-empty
// instance of the schema satisfies every CFD. On success it returns a
// single-tuple witness. The check is exact; worst-case exponential in the
// schema arity (the problem is NP-complete), with pruning that makes
// realistic constraint sets fast.
func Satisfiable(set *Set) (bool, relation.Tuple) {
	schema := set.schema
	arity := schema.Arity()
	domains := make([][]relation.Value, arity)
	for a := 0; a < arity; a++ {
		domains[a] = attrDomain(schema, a, [][]*CFD{set.cfds}, 1)
	}
	t := make(relation.Tuple, arity)
	assigned := make([]bool, arity)

	// prune reports whether the partial assignment already violates some
	// row: the row's LHS is fully assigned and matched while an assigned
	// RHS constant disagrees.
	prune := func() bool {
		for _, c := range set.cfds {
			nl := len(c.lhs)
			for _, row := range c.tableau {
				lhsOK := true
				for i, attr := range c.lhs {
					if !assigned[attr] {
						lhsOK = false
						break
					}
					if !row[i].Matches(t[attr]) {
						lhsOK = false
						break
					}
				}
				if !lhsOK {
					continue
				}
				for j, attr := range c.rhs {
					p := row[nl+j]
					if p.IsConst() && assigned[attr] && !p.Matches(t[attr]) {
						return true
					}
				}
			}
		}
		return false
	}

	var dfs func(a int) bool
	dfs = func(a int) bool {
		if a == arity {
			return true
		}
		for _, v := range domains[a] {
			t[a] = v
			assigned[a] = true
			if !prune() && dfs(a+1) {
				return true
			}
		}
		assigned[a] = false
		return false
	}
	if dfs(0) {
		return true, t.Clone()
	}
	return false, nil
}

// twoTuple is the symbolic two-tuple instance searched over by Implies.
type twoTuple struct {
	t1, t2 relation.Tuple
	a1, a2 []bool
}

// satisfiesAssigned reports whether the (partial) two-tuple instance is
// still consistent with Σ: no row of any CFD is definitely violated given
// the attributes assigned so far.
func (w *twoTuple) satisfiesAssigned(cfds []*CFD) bool {
	check1 := func(t relation.Tuple, a []bool) bool {
		for _, c := range cfds {
			nl := len(c.lhs)
			for _, row := range c.tableau {
				matched := true
				for i, attr := range c.lhs {
					if !a[attr] || !row[i].Matches(t[attr]) {
						matched = false
						break
					}
				}
				if !matched {
					continue
				}
				for j, attr := range c.rhs {
					p := row[nl+j]
					if p.IsConst() && a[attr] && !p.Matches(t[attr]) {
						return false
					}
				}
			}
		}
		return true
	}
	if !check1(w.t1, w.a1) || !check1(w.t2, w.a2) {
		return false
	}
	// Variable rows across the pair: if both tuples fully match a row's
	// LHS and agree on all X attributes, they must agree on wildcard RHS
	// attributes that are assigned in both.
	for _, c := range cfds {
		nl := len(c.lhs)
		for _, row := range c.tableau {
			ok := true
			for i, attr := range c.lhs {
				if !w.a1[attr] || !w.a2[attr] ||
					!row[i].Matches(w.t1[attr]) || !row[i].Matches(w.t2[attr]) ||
					!w.t1[attr].Identical(w.t2[attr]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for j, attr := range c.rhs {
				if !w.a1[attr] || !w.a2[attr] {
					continue
				}
				p := row[nl+j]
				if p.IsWild() && !w.t1[attr].Identical(w.t2[attr]) {
					return false
				}
			}
		}
	}
	return true
}

// Implies decides whether Σ (the set) logically implies φ: every instance
// satisfying Σ also satisfies φ. φ may have multiple RHS attributes and
// tableau rows; each (row, RHS attribute) is checked independently.
// The check is exact (the problem is coNP-complete; see the small-model
// argument at the top of the file).
func Implies(set *Set, phi *CFD) (bool, error) {
	if !phi.schema.Equal(set.schema) {
		return false, fmt.Errorf("cfd: implication across schemas %s and %s", phi.schema.Name(), set.schema.Name())
	}
	for _, single := range phi.Normalize() {
		for rowIdx := range single.tableau {
			implied, err := impliesRow(set, single, rowIdx)
			if err != nil {
				return false, err
			}
			if !implied {
				return false, nil
			}
		}
	}
	return true, nil
}

// impliesRow checks Σ ⊨ (X→A, {tp}) for one single-RHS row tp.
func impliesRow(set *Set, phi *CFD, rowIdx int) (bool, error) {
	schema := set.schema
	arity := schema.Arity()
	row := phi.tableau[rowIdx]
	nl := len(phi.lhs)
	rhsPat := row[nl]
	rhsAttr := phi.rhs[0]

	domains := make([][]relation.Value, arity)
	for a := 0; a < arity; a++ {
		domains[a] = attrDomain(schema, a, [][]*CFD{set.cfds, {phi}}, 2)
	}

	if rhsPat.IsConst() {
		// Counterexample: single tuple t with t ⊨ tp[X], t[A] ≠ const,
		// {t} ⊨ Σ.
		t := make(relation.Tuple, arity)
		assigned := make([]bool, arity)
		w := &twoTuple{t1: t, t2: t, a1: assigned, a2: assigned}
		var dfs func(a int) bool
		dfs = func(a int) bool {
			if a == arity {
				return true
			}
			for _, v := range domains[a] {
				// The witness must match tp on X and differ from the RHS
				// constant on A; enforce during assignment.
				if idx := lhsPos(phi, a); idx >= 0 && !row[idx].Matches(v) {
					continue
				}
				if a == rhsAttr && rhsPat.Matches(v) {
					continue
				}
				t[a] = v
				assigned[a] = true
				if w.satisfiesAssigned(set.cfds) && dfs(a+1) {
					return true
				}
			}
			assigned[a] = false
			return false
		}
		return !dfs(0), nil
	}

	// Wildcard RHS: counterexample is a pair t1, t2 matching tp[X],
	// agreeing on all of φ's X, differing on A, with {t1,t2} ⊨ Σ.
	w := &twoTuple{
		t1: make(relation.Tuple, arity), t2: make(relation.Tuple, arity),
		a1: make([]bool, arity), a2: make([]bool, arity),
	}
	var dfs func(a int) bool
	dfs = func(a int) bool {
		if a == arity {
			return true
		}
		for _, v1 := range domains[a] {
			if idx := lhsPos(phi, a); idx >= 0 && !row[idx].Matches(v1) {
				continue
			}
			for _, v2 := range domains[a] {
				if idx := lhsPos(phi, a); idx >= 0 {
					// φ's X attributes: both tuples must match the pattern
					// and agree with each other.
					if !v1.Identical(v2) {
						continue
					}
				}
				if a == rhsAttr && v1.Identical(v2) {
					continue // must differ on A
				}
				w.t1[a], w.t2[a] = v1, v2
				w.a1[a], w.a2[a] = true, true
				if w.satisfiesAssigned(set.cfds) && dfs(a+1) {
					return true
				}
			}
		}
		w.a1[a], w.a2[a] = false, false
		return false
	}
	return !dfs(0), nil
}

// lhsPos returns the index of schema attribute a within φ's X list, or -1.
func lhsPos(phi *CFD, a int) int {
	for i, attr := range phi.lhs {
		if attr == a {
			return i
		}
	}
	return -1
}

// MinimalCover computes a minimal cover of the set: an equivalent set in
// normal form (single RHS attribute per CFD, subsumption-reduced
// tableaux) from which no pattern row can be dropped without losing
// semantics. Follows the MINCOVER analysis of TODS 2008.
func MinimalCover(set *Set) (*Set, error) {
	// Normal form + tableau reduction.
	var work []*CFD
	for _, c := range set.cfds {
		for _, n := range c.Normalize() {
			work = append(work, n.Reduce())
		}
	}
	// Greedily drop implied rows. Each row is its own candidate; rebuild
	// CFDs from surviving rows at the end.
	type rowRef struct {
		c   *CFD
		row int
	}
	var rows []rowRef
	for _, c := range work {
		for i := range c.tableau {
			rows = append(rows, rowRef{c, i})
		}
	}
	alive := make([]bool, len(rows))
	for i := range alive {
		alive[i] = true
	}
	buildSet := func(skip int) *Set {
		s := NewSet(set.schema)
		for i, rr := range rows {
			if !alive[i] || i == skip {
				continue
			}
			single, err := New(rr.c.name, set.schema, rr.c.LHSNames(), rr.c.RHSNames(),
				pattern.Tableau{rr.c.tableau[rr.row]})
			if err != nil {
				panic(fmt.Sprintf("cfd: mincover rebuild invariant: %v", err))
			}
			s.MustAdd(single)
		}
		return s
	}
	for i, rr := range rows {
		candidate, err := New(rr.c.name, set.schema, rr.c.LHSNames(), rr.c.RHSNames(),
			pattern.Tableau{rr.c.tableau[rr.row]})
		if err != nil {
			return nil, err
		}
		rest := buildSet(i)
		if rest.Len() == 0 {
			continue
		}
		implied, err := Implies(rest, candidate)
		if err != nil {
			return nil, err
		}
		if implied {
			alive[i] = false
		}
	}
	return buildSet(-1), nil
}
