package cfd

import (
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/relation"
)

// This file implements eCFDs — the extension of CFDs with disjunction and
// negation in patterns — introduced by Bravo, Fan, Geerts and Ma
// ("Increasing the expressivity of conditional functional dependencies
// without extra complexity", ICDE 2008), cited as [3] by the tutorial.
//
// An ePattern is one of:
//
//	_            any value        (wildcard)
//	{a, b, c}    disjunction      (value must be one of the constants)
//	!{a, b}      negation         (value must be none of the constants)
//
// A plain constant is the singleton disjunction {a}. Detection
// generalizes the grouped CFD algorithm; the ICDE 2008 result is that the
// added expressivity does not change the complexity of the analyses, and
// the detection code below indeed runs in the same bounds.

// EPatternOp classifies an ePattern.
type EPatternOp int

const (
	// EAny matches every value.
	EAny EPatternOp = iota
	// EIn matches values in the constant set.
	EIn
	// ENotIn matches values outside the constant set.
	ENotIn
)

// EPattern is a pattern value with disjunction/negation.
type EPattern struct {
	Op   EPatternOp
	Vals []relation.Value // sorted by Compare for canonical rendering
}

// EAnyP returns the wildcard ePattern.
func EAnyP() EPattern { return EPattern{Op: EAny} }

// EInP returns the disjunctive ePattern {vals...}.
func EInP(vals ...relation.Value) EPattern {
	return EPattern{Op: EIn, Vals: sortVals(vals)}
}

// ENotInP returns the negated ePattern !{vals...}.
func ENotInP(vals ...relation.Value) EPattern {
	return EPattern{Op: ENotIn, Vals: sortVals(vals)}
}

func sortVals(vals []relation.Value) []relation.Value {
	out := append([]relation.Value(nil), vals...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Matches reports whether v matches the ePattern. As with CFD constants,
// NULL matches only the wildcard.
func (p EPattern) Matches(v relation.Value) bool {
	switch p.Op {
	case EAny:
		return true
	case EIn:
		if v.IsNull() {
			return false
		}
		for _, c := range p.Vals {
			if c.Identical(v) {
				return true
			}
		}
		return false
	default: // ENotIn
		if v.IsNull() {
			return false
		}
		for _, c := range p.Vals {
			if c.Identical(v) {
				return false
			}
		}
		return true
	}
}

// String renders the ePattern.
func (p EPattern) String() string {
	switch p.Op {
	case EAny:
		return "_"
	case EIn:
		return "{" + joinVals(p.Vals) + "}"
	default:
		return "!{" + joinVals(p.Vals) + "}"
	}
}

func joinVals(vals []relation.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		if v.Kind() == relation.KindString {
			parts[i] = "'" + v.Str() + "'"
		} else {
			parts[i] = v.String()
		}
	}
	return strings.Join(parts, ", ")
}

// ECFD is an eCFD: an embedded FD X → Y with an ePattern tableau.
type ECFD struct {
	name    string
	schema  *relation.Schema
	lhs     []int
	rhs     []int
	tableau [][]EPattern
}

// NewECFD constructs an eCFD; the tableau rows must have width |X|+|Y|.
func NewECFD(name string, schema *relation.Schema, lhsNames, rhsNames []string, tableau [][]EPattern) (*ECFD, error) {
	if len(lhsNames) == 0 || len(rhsNames) == 0 {
		return nil, fmt.Errorf("ecfd %s: X and Y must be non-empty", name)
	}
	lhs, err := schema.Indexes(lhsNames...)
	if err != nil {
		return nil, fmt.Errorf("ecfd %s: %w", name, err)
	}
	rhs, err := schema.Indexes(rhsNames...)
	if err != nil {
		return nil, fmt.Errorf("ecfd %s: %w", name, err)
	}
	width := len(lhs) + len(rhs)
	for i, row := range tableau {
		if len(row) != width {
			return nil, fmt.Errorf("ecfd %s: tableau row %d has width %d, want %d", name, i, len(row), width)
		}
	}
	if len(tableau) == 0 {
		row := make([]EPattern, width)
		for i := range row {
			row[i] = EAnyP()
		}
		tableau = [][]EPattern{row}
	}
	return &ECFD{name: name, schema: schema, lhs: lhs, rhs: rhs, tableau: tableau}, nil
}

// Name returns the eCFD's identifier.
func (e *ECFD) Name() string { return e.name }

// Schema returns the schema the eCFD is defined over.
func (e *ECFD) Schema() *relation.Schema { return e.schema }

// LHS returns the positions of the X attributes.
func (e *ECFD) LHS() []int { return append([]int(nil), e.lhs...) }

// RHS returns the positions of the Y attributes.
func (e *ECFD) RHS() []int { return append([]int(nil), e.rhs...) }

// Rows returns the number of tableau rows.
func (e *ECFD) Rows() int { return len(e.tableau) }

// Row returns tableau row i (X patterns then Y patterns).
func (e *ECFD) Row(i int) []EPattern {
	return append([]EPattern(nil), e.tableau[i]...)
}

// String renders the eCFD.
func (e *ECFD) String() string {
	var b strings.Builder
	b.WriteString("ecfd ")
	if e.name != "" {
		b.WriteString(e.name)
		b.WriteString(": ")
	}
	b.WriteString(e.schema.Name())
	b.WriteString("([")
	for i, a := range e.lhs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.schema.Attr(a).Name)
	}
	b.WriteString("] -> [")
	for i, a := range e.rhs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.schema.Attr(a).Name)
	}
	b.WriteString("]) { ")
	for i, row := range e.tableau {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, p := range row {
			if j == len(e.lhs) {
				b.WriteString(" || ")
			} else if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
		b.WriteByte(')')
	}
	b.WriteString(" }")
	return b.String()
}

// DetectECFD returns all violations of the eCFD in r, in the same
// Violation shape as CFD detection (the CFD field is nil; use the
// returned violations' TIDs/Attr/Row/Kind).
func DetectECFD(r *relation.Relation, e *ECFD) ([]Violation, error) {
	if !r.Schema().Equal(e.schema) {
		return nil, fmt.Errorf("ecfd: detecting %s over schema %s, want %s",
			e.name, r.Schema().Name(), e.schema.Name())
	}
	// Partition by X through a PLI; group order is sorted-key order, so
	// the violation list is deterministic (the legacy hash index iterated
	// buckets in map order).
	pli := relation.BuildPLI(r, e.lhs)
	var out []Violation
	nl := len(e.lhs)
	for g := 0; g < pli.NumGroups(); g++ {
		tids := pli.Group(g)
		rep := r.Tuple(tids[0])
		for rowIdx, row := range e.tableau {
			matched := true
			for i, attr := range e.lhs {
				if !row[i].Matches(rep[attr]) {
					matched = false
					break
				}
			}
			if !matched {
				continue
			}
			for j, attr := range e.rhs {
				p := row[nl+j]
				if p.Op != EAny {
					// Constrained RHS: every tuple in the group must match
					// the disjunction/negation (single-tuple violations).
					for _, tid := range tids {
						if !p.Matches(r.Tuple(tid)[attr]) {
							out = append(out, Violation{
								Row: rowIdx, Kind: ConstViolation, Attr: attr, TIDs: []int{tid},
							})
						}
					}
					continue
				}
				if len(tids) < 2 {
					continue
				}
				first := r.Tuple(tids[0])[attr]
				for _, tid := range tids[1:] {
					if !r.Tuple(tid)[attr].Identical(first) {
						group := append([]int(nil), tids...)
						sort.Ints(group)
						out = append(out, Violation{
							Row: rowIdx, Kind: VarViolation, Attr: attr, TIDs: group,
						})
						break
					}
				}
			}
		}
	}
	return out, nil
}
