package cfd

import (
	"fmt"
	"runtime"
	"sync"

	"semandaq/internal/relation"
)

// DetectParallel returns exactly what Detect returns — the same
// violations in the same order — but partitions the work across a pool
// of `workers` goroutines. Zero (or negative) workers means
// runtime.NumCPU().
//
// Parallelization exploits the grouping structure of CFD detection: a
// violation is always contained in a single X-group, so each per-CFD
// PLI's group range is split into contiguous chunks, every chunk is an
// independent DetectGroups job, and the per-chunk outputs are
// concatenated in (CFD, chunk) order. No locks are needed on the data
// path: workers only read the relation and write disjoint result slots.
// PLI acquisition for the different CFDs runs concurrently too, through
// the detector's index cache (which is concurrency-safe), so a warm
// cache skips the partition phase entirely. On a sharded cache
// (relation.IndexCache.SetShards — the engine session default) each
// cold acquisition additionally fans its own counting sort across
// TID-range shards, so even a single-CFD cold scan uses the whole
// machine instead of one core per constraint.
func (d *Detector) DetectParallel(r *relation.Relation, workers int) ([]Violation, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	cfds := d.set.cfds
	if workers == 1 || len(cfds) == 0 || r.Len() == 0 {
		return d.Detect(r)
	}
	for _, c := range cfds {
		if !r.Schema().Equal(c.schema) {
			return nil, fmt.Errorf("cfd: detecting %s over relation %s with schema %s",
				c.name, r.Schema().Name(), c.schema.Name())
		}
	}

	// Stage 1: acquire the per-CFD X-partitions concurrently (bounded by
	// the pool size; index building is the serial fraction of Detect),
	// and resolve each CFD's constant codes once for all of its chunks.
	plis := make([]*relation.PLI, len(cfds))
	preps := make([]cfdPrep, len(cfds))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, c := range cfds {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c *CFD) {
			defer wg.Done()
			defer func() { <-sem }()
			plis[i] = d.cache.Get(r, c.lhs)
			preps[i] = newPrep(r, c)
		}(i, c)
	}
	wg.Wait()

	// Stage 2: fan chunk jobs out to the worker pool. Each CFD's group
	// range is cut into up to `workers` contiguous chunks so every
	// worker stays busy even for a single-CFD set.
	type job struct {
		cfdIdx, chunkIdx int
		lo, hi           int
	}
	results := make([][][]Violation, len(cfds))
	var jobs []job
	for i := range cfds {
		n := plis[i].NumGroups()
		chunks := workers
		if chunks > n {
			chunks = n
		}
		if chunks == 0 {
			continue
		}
		results[i] = make([][]Violation, chunks)
		size, rem := n/chunks, n%chunks
		lo := 0
		for c := 0; c < chunks; c++ {
			hi := lo + size
			if c < rem {
				hi++
			}
			jobs = append(jobs, job{cfdIdx: i, chunkIdx: c, lo: lo, hi: hi})
			lo = hi
		}
	}
	jobCh := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				c := cfds[j.cfdIdx]
				results[j.cfdIdx][j.chunkIdx] = detectGroupsPrepared(
					r, c, plis[j.cfdIdx], j.lo, j.hi, preps[j.cfdIdx])
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()

	// Deterministic merge: (CFD, chunk) order equals the serial
	// sorted-group traversal.
	var out []Violation
	for _, perCFD := range results {
		for _, vs := range perCFD {
			out = append(out, vs...)
		}
	}
	return out, nil
}
