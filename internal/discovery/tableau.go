package discovery

import (
	"fmt"

	"semandaq/internal/cfd"
	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// This file implements pattern-tableau generation for a given embedded
// FD, following Golab, Karloff, Korn, Srivastava and Yu, "On generating
// near-optimal tableaux for conditional functional dependencies"
// (VLDB 2008 — the same proceedings as the tutorial). Given X → A and a
// relation, the task is to pick pattern rows whose scopes are large
// (support) and on which the FD nearly holds (confidence), covering as
// much of the data as possible. The problem is NP-hard; the greedy
// set-cover strategy used here is the paper's approximation.

// TableauOptions configures tableau generation.
type TableauOptions struct {
	// MinSupport is the minimum fraction of tuples a row's scope must
	// contain (default 0.05).
	MinSupport float64
	// MinConfidence is the minimum confidence of each row: the largest
	// fraction of the row's scope that satisfies the embedded FD after
	// keeping only the plurality A-value of each X-group (default 1.0,
	// i.e. the FD must hold exactly on the scope).
	MinConfidence float64
	// MaxRows bounds the tableau (default 8).
	MaxRows int
	// MaxConstants bounds the number of constant positions per row
	// (default 2) — candidate rows are wildcards with up to this many
	// attribute=constant conditions.
	MaxConstants int
	// Cache supplies the PLI partition cache candidate scopes and
	// confidence grouping run on; nil uses a private per-call cache.
	Cache *relation.IndexCache
}

func (o TableauOptions) withDefaults() TableauOptions {
	if o.MinSupport == 0 {
		o.MinSupport = 0.05
	}
	if o.MinConfidence == 0 {
		o.MinConfidence = 1.0
	}
	if o.MaxRows == 0 {
		o.MaxRows = 8
	}
	if o.MaxConstants == 0 {
		o.MaxConstants = 2
	}
	if o.Cache == nil {
		o.Cache = relation.NewIndexCache()
	}
	return o
}

// RowStats describes one generated pattern row.
type RowStats struct {
	Row        pattern.Row // X patterns only
	Support    float64     // |scope| / |r|
	Confidence float64
	NewCover   int // tuples newly covered when the row was picked
}

// GenerateTableau builds a pattern tableau for the embedded FD
// lhsNames → rhsName over r: greedy set cover over candidate rows
// meeting the support and confidence thresholds. It returns the CFD
// (tableau rows have a wildcard RHS) and per-row statistics, in pick
// order.
func GenerateTableau(r *relation.Relation, lhsNames []string, rhsName string, opts TableauOptions) (*cfd.CFD, []RowStats, error) {
	opts = opts.withDefaults()
	schema := r.Schema()
	lhs, err := schema.Indexes(lhsNames...)
	if err != nil {
		return nil, nil, err
	}
	rhsIdx, ok := schema.Index(rhsName)
	if !ok {
		return nil, nil, fmt.Errorf("discovery: schema %s has no attribute %q", schema.Name(), rhsName)
	}
	if r.Len() == 0 {
		return nil, nil, fmt.Errorf("discovery: empty relation")
	}
	minScope := int(opts.MinSupport * float64(r.Len()))
	if minScope < 1 {
		minScope = 1
	}

	// Candidate rows: wildcard row + rows with constants on subsets of X
	// of size ≤ MaxConstants, values drawn from the active domain with
	// sufficient support.
	type candidate struct {
		row   pattern.Row
		scope []int // TIDs matching the row
		conf  float64
	}
	var candidates []candidate

	// Confidence groups each scope by the cached X partition and counts
	// plurality A values by dictionary code — codes coincide with the
	// Encode keys the legacy map grouped on.
	pliLHS := opts.Cache.GetVia(r, lhs)
	rhsCodes := r.ColumnCodes(rhsIdx)
	confidence := func(scope []int) float64 {
		// Group scope by X; keep plurality A per group.
		groups := map[int32]map[int32]int{}
		for _, tid := range scope {
			g := int32(pliLHS.GroupOf(tid))
			if groups[g] == nil {
				groups[g] = map[int32]int{}
			}
			groups[g][rhsCodes[tid]]++
		}
		kept := 0
		for _, counts := range groups {
			best := 0
			for _, c := range counts {
				if c > best {
					best = c
				}
			}
			kept += best
		}
		return float64(kept) / float64(len(scope))
	}

	addCandidate := func(row pattern.Row, scope []int) {
		if len(scope) < minScope {
			return
		}
		conf := confidence(scope)
		if conf+1e-12 < opts.MinConfidence {
			return
		}
		candidates = append(candidates, candidate{row: row, scope: scope, conf: conf})
	}

	// All-wildcard row.
	allTIDs := make([]int, r.Len())
	for i := range allTIDs {
		allTIDs[i] = i
	}
	wildRow := make(pattern.Row, len(lhs))
	addCandidate(wildRow, allTIDs)

	// Constant rows on subsets of X. PLI group order is the sorted-key
	// order the legacy path sorted buckets into.
	for _, sub := range subsetsUpTo(len(lhs), opts.MaxConstants) {
		attrs := make([]int, len(sub))
		for i, pos := range sub {
			attrs[i] = lhs[pos]
		}
		pli := opts.Cache.GetVia(r, attrs)
		type bucket struct {
			tids []int
		}
		var buckets []bucket
		for g := 0; g < pli.NumGroups(); g++ {
			tids := pli.Group(g)
			if len(tids) >= minScope {
				buckets = append(buckets, bucket{tids})
			}
		}
		for _, b := range buckets {
			rep := r.Tuple(b.tids[0])
			row := make(pattern.Row, len(lhs))
			nullVal := false
			for i, pos := range sub {
				v := rep[attrs[i]]
				if v.IsNull() {
					nullVal = true
					break
				}
				row[pos] = pattern.Const(v)
			}
			if nullVal {
				continue
			}
			addCandidate(row, b.tids)
		}
	}

	// Greedy set cover by marginal new coverage (ties: higher confidence,
	// then more general rows — fewer constants).
	covered := make([]bool, r.Len())
	var rows pattern.Tableau
	var stats []RowStats
	for len(rows) < opts.MaxRows {
		bestIdx, bestNew := -1, 0
		bestConf := 0.0
		bestConsts := 0
		for i, c := range candidates {
			if c.row == nil {
				continue // consumed
			}
			newCover := 0
			for _, tid := range c.scope {
				if !covered[tid] {
					newCover++
				}
			}
			consts := 0
			for _, p := range c.row {
				if p.IsConst() {
					consts++
				}
			}
			better := newCover > bestNew ||
				(newCover == bestNew && newCover > 0 && (c.conf > bestConf ||
					(c.conf == bestConf && consts < bestConsts)))
			if better {
				bestIdx, bestNew, bestConf, bestConsts = i, newCover, c.conf, consts
			}
		}
		if bestIdx < 0 || bestNew == 0 {
			break
		}
		pick := candidates[bestIdx]
		candidates[bestIdx].row = nil
		for _, tid := range pick.scope {
			covered[tid] = true
		}
		fullRow := make(pattern.Row, len(lhs)+1)
		copy(fullRow, pick.row)
		fullRow[len(lhs)] = pattern.Wild()
		rows = append(rows, fullRow)
		stats = append(stats, RowStats{
			Row:        pick.row.Clone(),
			Support:    float64(len(pick.scope)) / float64(r.Len()),
			Confidence: pick.conf,
			NewCover:   bestNew,
		})
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("discovery: no pattern row meets support %.2f and confidence %.2f",
			opts.MinSupport, opts.MinConfidence)
	}
	name := fmt.Sprintf("gen_%s_%s", joinNames(lhsNames), rhsName)
	c, err := cfd.New(name, schema, lhsNames, []string{rhsName}, rows)
	if err != nil {
		return nil, nil, err
	}
	return c, stats, nil
}
