package discovery

import (
	"math/rand"
	"strings"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/relation"
)

func schema(t *testing.T, names ...string) *relation.Schema {
	t.Helper()
	s, err := relation.StringSchema("r", names...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func strTuple(vals ...string) relation.Tuple {
	tp := make(relation.Tuple, len(vals))
	for i, v := range vals {
		tp[i] = relation.String(v)
	}
	return tp
}

func TestFDsSimple(t *testing.T) {
	s := schema(t, "A", "B", "C")
	r := relation.New(s)
	// A determines B (a1->b1, a2->b2); C is free.
	r.MustInsert(strTuple("a1", "b1", "c1"))
	r.MustInsert(strTuple("a1", "b1", "c2"))
	r.MustInsert(strTuple("a2", "b2", "c1"))
	r.MustInsert(strTuple("a2", "b2", "c3"))
	fds, err := FDs(r, Options{MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !containsFD(fds, []string{"A"}, "B") {
		t.Errorf("A -> B not found in %v", names(fds))
	}
	if containsFD(fds, []string{"A"}, "C") {
		t.Errorf("A -> C should not hold")
	}
	// Minimality: A->B found, so {A,C}->B must not be reported.
	if containsFD(fds, []string{"A", "C"}, "B") {
		t.Errorf("non-minimal FD {A,C} -> B reported")
	}
}

func TestFDsHoldOnInput(t *testing.T) {
	// Property: every discovered FD has zero violations on the input.
	rng := rand.New(rand.NewSource(5))
	s := schema(t, "A", "B", "C", "D")
	for trial := 0; trial < 10; trial++ {
		r := relation.New(s)
		for i := 0; i < 50; i++ {
			r.MustInsert(strTuple(
				pick(rng, "x", "y"),
				pick(rng, "p", "q", "r"),
				pick(rng, "1", "2"),
				pick(rng, "m", "n", "o", "z")))
		}
		fds, err := FDs(r, Options{MaxLHS: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range fds {
			ok, err := c.Satisfies(r)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: discovered FD %s does not hold", trial, c)
			}
		}
	}
}

func TestConstantCFDs(t *testing.T) {
	s := schema(t, "CC", "AC", "CT")
	r := relation.New(s)
	// All 44/131 tuples live in edi (3 supporting tuples).
	r.MustInsert(strTuple("44", "131", "edi"))
	r.MustInsert(strTuple("44", "131", "edi"))
	r.MustInsert(strTuple("44", "131", "edi"))
	// 01 tuples are split between cities, so CC=01 determines nothing.
	r.MustInsert(strTuple("01", "908", "mh"))
	r.MustInsert(strTuple("01", "212", "nyc"))
	cs, err := ConstantCFDs(r, Options{MinSupport: 2, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cs {
		str := c.String()
		if strings.Contains(str, "CC") && strings.Contains(str, "'44'") &&
			strings.Contains(str, "CT") && strings.Contains(str, "'edi'") &&
			len(c.LHS()) == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("CC='44' -> CT='edi' not mined; got:\n%s", dump(cs))
	}
	// Free-set minimality: since CC='44' alone determines CT='edi', the
	// refinement (CC='44', AC='131') -> CT='edi' must be pruned.
	for _, c := range cs {
		if len(c.LHS()) == 2 && strings.Contains(c.String(), "'edi'") {
			t.Errorf("non-minimal constant CFD mined: %s", c)
		}
	}
}

func TestConstantCFDsSupportThreshold(t *testing.T) {
	s := schema(t, "A", "B")
	r := relation.New(s)
	r.MustInsert(strTuple("a1", "b1")) // support 1: below threshold
	r.MustInsert(strTuple("a2", "b2"))
	r.MustInsert(strTuple("a2", "b2"))
	cs, err := ConstantCFDs(r, Options{MinSupport: 2, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if strings.Contains(c.String(), "'a1'") {
			t.Errorf("below-threshold rule mined: %s", c)
		}
	}
	found := false
	for _, c := range cs {
		if strings.Contains(c.String(), "'a2'") && strings.Contains(c.String(), "'b2'") {
			found = true
		}
	}
	if !found {
		t.Errorf("supported rule a2->b2 missing:\n%s", dump(cs))
	}
}

func TestConstantCFDsHoldOnInput(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := schema(t, "A", "B", "C")
	for trial := 0; trial < 10; trial++ {
		r := relation.New(s)
		for i := 0; i < 60; i++ {
			r.MustInsert(strTuple(pick(rng, "x", "y", "z"), pick(rng, "p", "q"), pick(rng, "1", "2", "3")))
		}
		cs, err := ConstantCFDs(r, Options{MinSupport: 3, MaxLHS: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cs {
			ok, err := c.Satisfies(r)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: mined constant CFD %s does not hold", trial, c)
			}
		}
	}
}

func TestVariableCFDs(t *testing.T) {
	s := schema(t, "CC", "ZIP", "STR")
	r := relation.New(s)
	// Inside CC=44, ZIP determines STR; inside CC=01 it does not.
	r.MustInsert(strTuple("44", "Z1", "mayfield"))
	r.MustInsert(strTuple("44", "Z1", "mayfield"))
	r.MustInsert(strTuple("44", "Z2", "crichton"))
	r.MustInsert(strTuple("01", "Z1", "mtn ave"))
	r.MustInsert(strTuple("01", "Z1", "high st"))
	r.MustInsert(strTuple("01", "Z3", "oak"))
	cs, err := VariableCFDs(r, Options{MinSupport: 2, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Expect a CFD over [CC, ZIP] -> STR conditioned on CC='44'.
	found := false
	for _, c := range cs {
		str := c.String()
		if strings.Contains(str, "'44'") && strings.Contains(str, "STR") {
			found = true
			// And it must hold on the input.
			ok, err := c.Satisfies(r)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("discovered variable CFD does not hold: %s", c)
			}
		}
		// No rule conditioned on CC='01' for STR (fails inside scope).
		if strings.Contains(str, "'01'") && strings.Contains(str, "STR") && strings.Contains(str, "ZIP") {
			t.Errorf("invalid conditional rule mined: %s", c)
		}
	}
	if !found {
		t.Errorf("conditional rule on CC='44' missing:\n%s", dump(cs))
	}
}

func TestVariableCFDsSkipGlobalFDs(t *testing.T) {
	s := schema(t, "A", "B", "C")
	r := relation.New(s)
	// A,B -> C holds globally: not a variable CFD.
	r.MustInsert(strTuple("a", "b", "c"))
	r.MustInsert(strTuple("a", "b2", "c2"))
	r.MustInsert(strTuple("a2", "b", "c3"))
	cs, err := VariableCFDs(r, Options{MinSupport: 1, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if len(c.RHS()) == 1 && c.RHSNames()[0] == "C" && len(c.LHSNames()) == 2 {
			t.Errorf("globally-holding FD rediscovered as conditional: %s", c)
		}
	}
}

func TestDiscoverUnionAndPlantedRecovery(t *testing.T) {
	// Plant a CFD-governed dataset and check the planted rules come back.
	s := schema(t, "CC", "AC", "CT", "PN")
	r := relation.New(s)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		cc := pick(rng, "44", "01")
		var ac, ct string
		if cc == "44" {
			ac, ct = "131", "edi" // planted: CC=44 -> AC=131, CT=edi
		} else {
			ac = pick(rng, "908", "212")
			if ac == "908" {
				ct = "mh" // planted: AC=908 -> CT=mh
			} else {
				ct = "nyc"
			}
		}
		r.MustInsert(strTuple(cc, ac, ct, pick(rng, "1", "2", "3", "4", "5", "6")))
	}
	all, err := Discover(r, Options{MinSupport: 5, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantSubstr := [][]string{
		{"CC", "'44'", "AC", "'131'"},
		{"CC", "'44'", "CT", "'edi'"},
		{"AC", "'908'", "CT", "'mh'"},
	}
	for _, want := range wantSubstr {
		found := false
		for _, c := range all {
			str := c.String()
			ok := true
			for _, sub := range want {
				if !strings.Contains(str, sub) {
					ok = false
					break
				}
			}
			if ok {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("planted rule %v not recovered; discovered:\n%s", want, dump(all))
		}
	}
	// Everything discovered holds.
	for _, c := range all {
		ok, err := c.Satisfies(r)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("discovered rule does not hold: %s", c)
		}
	}
}

func TestEmptyRelation(t *testing.T) {
	s := schema(t, "A", "B")
	r := relation.New(s)
	all, err := Discover(r, Options{})
	if err != nil || len(all) != 0 {
		t.Errorf("empty relation: %v, %v", all, err)
	}
}

func TestSubsetsUpTo(t *testing.T) {
	got := subsetsUpTo(3, 2)
	// 3 singletons + 3 pairs.
	if len(got) != 6 {
		t.Fatalf("subsets = %v", got)
	}
	// Level-wise order: all singletons first.
	for i := 0; i < 3; i++ {
		if len(got[i]) != 1 {
			t.Errorf("subset %d = %v, want singleton first", i, got[i])
		}
	}
}

func containsFD(cs []*cfd.CFD, lhs []string, rhs string) bool {
	for _, c := range cs {
		if !c.IsFD() || len(c.RHSNames()) != 1 || c.RHSNames()[0] != rhs {
			continue
		}
		got := c.LHSNames()
		if len(got) != len(lhs) {
			continue
		}
		match := true
		for i := range lhs {
			if got[i] != lhs[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func names(cs []*cfd.CFD) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.String()
	}
	return out
}

func dump(cs []*cfd.CFD) string {
	return strings.Join(names(cs), "\n")
}

func pick(rng *rand.Rand, vals ...string) string {
	return vals[rng.Intn(len(vals))]
}
