// Package discovery implements CFD discovery (profiling), the "deducing
// and discovering rules for cleaning the data" capability the tutorial
// lists under research on data quality (§2). The algorithms follow the
// two families evaluated in the literature the tutorial spawned (Fan,
// Geerts, Li, Xiong, "Discovering conditional functional dependencies",
// ICDE 2009/TKDE 2011):
//
//   - constant CFD mining in the style of CFDMiner: minimal constant
//     patterns (X = x̄ → A = a) derived from free/closed itemset pairs
//     with a support threshold;
//   - variable CFD discovery in the style of CTANE: level-wise TANE-like
//     search over attribute-set lattices, extended with single-attribute
//     conditions that make a failing FD hold on a pattern's scope.
//
// Every discovered CFD is guaranteed to (a) hold on the input relation
// and (b) meet the support threshold; tests enforce both as properties.
package discovery

import (
	"fmt"
	"sort"

	"semandaq/internal/cfd"
	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// Options configures discovery.
type Options struct {
	// MinSupport is the minimum number of tuples a pattern's scope must
	// contain (default 2).
	MinSupport int
	// MaxLHS bounds the number of LHS attributes explored (default 3).
	MaxLHS int
	// Cache supplies the PLI partition cache the lattice walk runs on.
	// Passing a long-lived cache (e.g. an engine session's per-dataset
	// cache, shared with detection) makes repeated discovery over
	// unchanged data partition-free; nil uses a private per-call cache.
	Cache *relation.IndexCache
}

func (o Options) withDefaults() Options {
	if o.MinSupport == 0 {
		o.MinSupport = 2
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 3
	}
	if o.Cache == nil {
		o.Cache = relation.NewIndexCache()
	}
	return o
}

// FDs discovers the minimal plain functional dependencies X → A with
// |X| ≤ MaxLHS that hold on r, using TANE-style level-wise partition
// refinement: X → A holds iff the partition of r by X has as many groups
// as the partition by X∪{A}.
//
// Partitions come from Options.Cache via IndexCache.GetVia, so the walk
// intersects each level-k partition out of its level-(k-1) prefix
// instead of re-partitioning the relation per lattice node: because
// subsetsUpTo enumerates sets level-wise and lexicographically, every
// sorted set X∪{A} is first requested exactly when X is its length-|X|
// prefix, making the whole lattice cost |R| single builds plus one
// counting-sort refinement per node.
func FDs(r *relation.Relation, opts Options) ([]*cfd.CFD, error) {
	opts = opts.withDefaults()
	arity := r.Schema().Arity()
	if r.Len() == 0 {
		return nil, nil
	}

	groupsOf := func(attrs []int) int {
		return opts.Cache.GetVia(r, attrs).NumGroups()
	}

	// minimal[A] holds the discovered minimal LHS sets for RHS attribute A.
	minimal := make(map[int][][]int)
	hasSubsetFD := func(x []int, a int) bool {
		for _, m := range minimal[a] {
			if isSubset(m, x) {
				return true
			}
		}
		return false
	}

	var out []*cfd.CFD
	for _, x := range subsetsUpTo(arity, opts.MaxLHS) {
		gx := groupsOf(x)
		for a := 0; a < arity; a++ {
			if contains(x, a) || hasSubsetFD(x, a) {
				continue
			}
			xa := append(append([]int(nil), x...), a)
			sort.Ints(xa)
			if gx == groupsOf(xa) {
				minimal[a] = append(minimal[a], append([]int(nil), x...))
				c, err := buildFD(r.Schema(), x, a)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
		}
	}
	return out, nil
}

// buildFD constructs the plain FD X → A as a CFD with one all-wild row.
func buildFD(schema *relation.Schema, x []int, a int) (*cfd.CFD, error) {
	lhs := make([]string, len(x))
	for i, idx := range x {
		lhs[i] = schema.Attr(idx).Name
	}
	name := fmt.Sprintf("fd_%s_%s", joinNames(lhs), schema.Attr(a).Name)
	return cfd.New(name, schema, lhs, []string{schema.Attr(a).Name}, nil)
}

// ConstantCFDs mines minimal constant CFDs (X = x̄ → A = 'a') holding on
// r with scope at least MinSupport, in the spirit of CFDMiner: the LHS
// pattern must be "free" — no generalization (dropping one attribute)
// already determines the same constant.
func ConstantCFDs(r *relation.Relation, opts Options) ([]*cfd.CFD, error) {
	opts = opts.withDefaults()
	arity := r.Schema().Arity()
	if r.Len() == 0 {
		return nil, nil
	}

	// discovered[g] for generalization pruning: key is
	// (sorted X, encoded x̄ values, A, encoded a).
	type ruleKey struct {
		attrs string
		vals  string
		rhs   int
		rhsV  string
	}
	emitted := map[ruleKey]bool{}
	generalizes := func(x []int, vals relation.Tuple, a int, av relation.Value) bool {
		// Does some emitted rule with X' ⊂ X, consistent values, same RHS
		// exist? We only need to check direct generalizations because
		// emission is level-wise (smaller X first).
		for drop := range x {
			sub := make([]int, 0, len(x)-1)
			var subVals relation.Tuple
			for i, idx := range x {
				if i == drop {
					continue
				}
				sub = append(sub, idx)
				subVals = append(subVals, vals[i])
			}
			k := ruleKey{encodeInts(sub), subVals.FullKey(), a, string(av.Encode(nil))}
			if emitted[k] {
				return true
			}
		}
		return false
	}

	var out []*cfd.CFD
	for _, x := range subsetsUpTo(arity, opts.MaxLHS) {
		if len(x) == 0 {
			continue
		}
		pli := opts.Cache.GetVia(r, x)
		type group struct {
			vals relation.Tuple
			tids []int
		}
		var groups []group
		// PLI groups arrive in sorted encoded-key order — exactly the
		// FullKey order the legacy path sorted into — so iteration is
		// already deterministic and reproducible.
		for gi := 0; gi < pli.NumGroups(); gi++ {
			tids := pli.Group(gi)
			if len(tids) >= opts.MinSupport {
				groups = append(groups, group{r.Tuple(tids[0]).Project(x), tids})
			}
		}
		for _, g := range groups {
			hasNull := false
			for _, v := range g.vals {
				if v.IsNull() {
					hasNull = true
					break
				}
			}
			if hasNull {
				continue // constant patterns cannot express NULL
			}
			for a := 0; a < arity; a++ {
				if contains(x, a) {
					continue
				}
				av := r.Tuple(g.tids[0])[a]
				if av.IsNull() {
					continue
				}
				uniform := true
				for _, tid := range g.tids[1:] {
					if !r.Tuple(tid)[a].Identical(av) {
						uniform = false
						break
					}
				}
				if !uniform || generalizes(x, g.vals, a, av) {
					continue
				}
				k := ruleKey{encodeInts(x), g.vals.FullKey(), a, string(av.Encode(nil))}
				emitted[k] = true
				c, err := buildConstantCFD(r.Schema(), x, g.vals, a, av)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
		}
	}
	return out, nil
}

func buildConstantCFD(schema *relation.Schema, x []int, vals relation.Tuple, a int, av relation.Value) (*cfd.CFD, error) {
	lhs := make([]string, len(x))
	row := make(pattern.Row, 0, len(x)+1)
	for i, idx := range x {
		lhs[i] = schema.Attr(idx).Name
		row = append(row, pattern.Const(vals[i]))
	}
	row = append(row, pattern.Const(av))
	name := fmt.Sprintf("ccfd_%s_%s", joinNames(lhs), schema.Attr(a).Name)
	return cfd.New(name, schema, lhs, []string{schema.Attr(a).Name}, pattern.Tableau{row})
}

// VariableCFDs discovers conditional (variable) CFDs in the CTANE style:
// for embedded FDs X → A that fail on the whole relation, it searches
// single-attribute conditions B = b (B ∈ X) under which the FD holds
// with support ≥ MinSupport. Plain FDs that hold globally are reported
// by FDs and skipped here.
func VariableCFDs(r *relation.Relation, opts Options) ([]*cfd.CFD, error) {
	opts = opts.withDefaults()
	arity := r.Schema().Arity()
	if r.Len() == 0 {
		return nil, nil
	}

	var out []*cfd.CFD
	for _, x := range subsetsUpTo(arity, opts.MaxLHS) {
		if len(x) < 2 {
			continue // a condition needs one attr, the FD another
		}
		pliX := opts.Cache.GetVia(r, x)
		for a := 0; a < arity; a++ {
			if contains(x, a) {
				continue
			}
			xa := append(append([]int(nil), x...), a)
			sort.Ints(xa)
			if pliX.NumGroups() == opts.Cache.GetVia(r, xa).NumGroups() {
				continue // holds globally: a plain FD, not a conditional one
			}
			// Try conditioning on each attribute of X.
			for _, b := range x {
				rows, err := conditionalRows(r, opts.Cache, pliX, x, a, b, opts.MinSupport)
				if err != nil {
					return nil, err
				}
				if len(rows) == 0 {
					continue
				}
				c, err := buildVariableCFD(r.Schema(), x, a, rows)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
		}
	}
	return out, nil
}

// conditionalRows finds the values b of attribute cond such that X → A
// holds on σ_{cond=b}(r) with at least minSupport tuples, returning the
// pattern rows (constant on cond, wildcards elsewhere). pliX is the
// cached partition of r by X; X-group membership inside each scope comes
// from PLI.GroupOf instead of re-encoding string keys per tuple.
func conditionalRows(r *relation.Relation, cache *relation.IndexCache, pliX *relation.PLI, x []int, a, cond, minSupport int) ([]pattern.Row, error) {
	// Partition by cond, then test the FD within each part. PLI group
	// order is sorted encoded-key order, matching the legacy key sort.
	byCond := cache.GetVia(r, []int{cond})
	type candidate struct {
		val  relation.Value
		tids []int
	}
	var cands []candidate
	for g := 0; g < byCond.NumGroups(); g++ {
		tids := byCond.Group(g)
		if len(tids) >= minSupport {
			v := r.Tuple(tids[0])[cond]
			if !v.IsNull() {
				cands = append(cands, candidate{v, tids})
			}
		}
	}

	codesA := r.ColumnCodes(a)
	var rows []pattern.Row
	for _, cand := range cands {
		// Check X → A within the scope: every X-group of the scope must
		// agree on A. Codes decide the fast path; unequal codes (possibly
		// Identical across mixed kinds) and NaN fall back to the exact
		// value comparison against the group's first member, preserving
		// the legacy semantics.
		first := map[int32]int{} // X-group -> first scope member
		holds := true
		for _, tid := range cand.tids {
			g := pliX.GroupOf(tid)
			ft, ok := first[int32(g)]
			if !ok {
				first[int32(g)] = tid
				continue
			}
			if codesA[tid] == codesA[ft] && !r.Tuple(ft)[a].IsNaN() {
				continue
			}
			if !r.Tuple(ft)[a].Identical(r.Tuple(tid)[a]) {
				holds = false
				break
			}
		}
		if !holds {
			continue
		}
		// Reject trivial scopes: if every X-group in scope is a
		// singleton the FD holds vacuously; require at least one group
		// with 2+ members so the rule is supported by evidence.
		supported := false
		seen := map[int32]bool{}
		for _, tid := range cand.tids {
			g := int32(pliX.GroupOf(tid))
			if seen[g] {
				supported = true
				break
			}
			seen[g] = true
		}
		if !supported {
			continue
		}
		row := make(pattern.Row, 0, len(x)+1)
		for _, idx := range x {
			if idx == cond {
				row = append(row, pattern.Const(cand.val))
			} else {
				row = append(row, pattern.Wild())
			}
		}
		row = append(row, pattern.Wild())
		rows = append(rows, row)
	}
	return rows, nil
}

func buildVariableCFD(schema *relation.Schema, x []int, a int, rows []pattern.Row) (*cfd.CFD, error) {
	lhs := make([]string, len(x))
	for i, idx := range x {
		lhs[i] = schema.Attr(idx).Name
	}
	name := fmt.Sprintf("vcfd_%s_%s", joinNames(lhs), schema.Attr(a).Name)
	return cfd.New(name, schema, lhs, []string{schema.Attr(a).Name}, pattern.Tableau(rows))
}

// Discover runs all three discovery passes and returns the union. The
// passes share one partition cache (Options.Cache, defaulted here), so
// the lattice partitions FDs builds are reused by the constant and
// variable passes.
func Discover(r *relation.Relation, opts Options) ([]*cfd.CFD, error) {
	opts = opts.withDefaults()
	fds, err := FDs(r, opts)
	if err != nil {
		return nil, err
	}
	consts, err := ConstantCFDs(r, opts)
	if err != nil {
		return nil, err
	}
	vars, err := VariableCFDs(r, opts)
	if err != nil {
		return nil, err
	}
	out := append(fds, consts...)
	return append(out, vars...), nil
}

// subsetsUpTo enumerates the non-empty subsets of {0..n-1} with size ≤ k,
// ordered by size then lexicographically (level-wise order).
func subsetsUpTo(n, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			out = append(out, append([]int(nil), cur...))
		}
		if len(cur) == k {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func isSubset(sub, super []int) bool {
	for _, s := range sub {
		if !contains(super, s) {
			return false
		}
	}
	return true
}

func encodeInts(xs []int) string {
	b := make([]byte, 0, len(xs)*3)
	for _, x := range xs {
		b = append(b, byte(x), ',')
	}
	return string(b)
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "_"
		}
		out += n
	}
	return out
}
