// Package discovery implements CFD discovery (profiling), the "deducing
// and discovering rules for cleaning the data" capability the tutorial
// lists under research on data quality (§2). The algorithms follow the
// two families evaluated in the literature the tutorial spawned (Fan,
// Geerts, Li, Xiong, "Discovering conditional functional dependencies",
// ICDE 2009/TKDE 2011):
//
//   - constant CFD mining in the style of CFDMiner: minimal constant
//     patterns (X = x̄ → A = a) derived from free/closed itemset pairs
//     with a support threshold;
//   - variable CFD discovery in the style of CTANE: level-wise TANE-like
//     search over attribute-set lattices, extended with single-attribute
//     conditions that make a failing FD hold on a pattern's scope.
//
// Every discovered CFD is guaranteed to (a) hold on the input relation
// and (b) meet the support threshold; tests enforce both as properties.
package discovery

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"semandaq/internal/cfd"
	"semandaq/internal/pattern"
	"semandaq/internal/relation"
)

// Options configures discovery.
type Options struct {
	// MinSupport is the minimum number of tuples a pattern's scope must
	// contain (default 2).
	MinSupport int
	// MaxLHS bounds the number of LHS attributes explored (default 3).
	MaxLHS int
	// Cache supplies the PLI partition cache the lattice walk runs on.
	// Passing a long-lived cache (e.g. an engine session's per-dataset
	// cache, shared with detection) makes repeated discovery over
	// unchanged data partition-free; nil uses a private per-call cache.
	Cache *relation.IndexCache
	// Workers fans the independent per-set refinements of each lattice
	// level out over this many goroutines (the cache is concurrency-
	// safe); 0 or 1 walks serially. The output is byte-identical either
	// way: per-set results are reduced in lexicographic order, and the
	// minimality/generalization pruning only ever consults strictly
	// smaller attribute sets, which are settled before a level starts.
	// engine.Session.Discover defaults this to the session's worker
	// pool (runtime.NumCPU()).
	Workers int
	// Shards is the PLI build fan-out applied to the PRIVATE cache a
	// nil Cache creates: each cold partition build or refinement of the
	// lattice walk runs as a TID-range-parallel counting sort across
	// this many shards (relation.IndexCache.SetShards; byte-identical
	// to serial). A caller-supplied Cache keeps its own setting — an
	// engine session's cache is configured by the session.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.MinSupport == 0 {
		o.MinSupport = 2
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 3
	}
	if o.Cache == nil {
		o.Cache = relation.NewIndexCache()
		if o.Shards != 0 {
			o.Cache.SetShards(o.Shards)
		}
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// mapLevel applies fn to every attribute set of one lattice level,
// fanning the independent computations over workers goroutines.
// Results come back indexed by position, so callers reduce them in
// deterministic lexicographic order regardless of scheduling;
// workers <= 1 degrades to the plain serial loop.
func mapLevel[T any](sets [][]int, workers int, fn func(x []int) T) []T {
	out := make([]T, len(sets))
	if workers > len(sets) {
		workers = len(sets)
	}
	if workers <= 1 {
		for i, x := range sets {
			out[i] = fn(x)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sets) {
					return
				}
				out[i] = fn(sets[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// warmLevel materializes a level's own partitions (parallel GetVia)
// before the per-set probes run, so every deeper probe — whose
// refinement parent may be a lexicographic sibling, not the probing set
// itself — finds that parent cached regardless of worker scheduling.
// This keeps the parallel walk's from-scratch builds bounded by the
// arity, exactly like the serial walk.
func warmLevel(r *relation.Relation, cache *relation.IndexCache, sets [][]int, workers int) {
	mapLevel(sets, workers, func(x []int) struct{} {
		cache.GetVia(r, x)
		return struct{}{}
	})
}

// latticeLevels splits the level-wise subset enumeration into its
// levels (size-1 sets, then size-2 sets, ...), each in lexicographic
// order — the barrier unit of the parallel walk.
func latticeLevels(n, k int) [][][]int {
	var out [][][]int
	for _, x := range subsetsUpTo(n, k) {
		if len(out) < len(x) {
			out = append(out, nil)
		}
		out[len(x)-1] = append(out[len(x)-1], x)
	}
	return out
}

// FDs discovers the minimal plain functional dependencies X → A with
// |X| ≤ MaxLHS that hold on r, using TANE-style level-wise partition
// refinement: X → A holds iff the partition of r by X has as many groups
// as the partition by X∪{A}.
//
// Partitions come from Options.Cache via IndexCache.GetVia, so the walk
// intersects each level-k partition out of its level-(k-1) prefix
// instead of re-partitioning the relation per lattice node: because
// subsetsUpTo enumerates sets level-wise and lexicographically, every
// sorted set X∪{A} is first requested exactly when X is its length-|X|
// prefix, making the whole lattice cost |R| single builds plus one
// counting-sort refinement per node.
func FDs(r *relation.Relation, opts Options) ([]*cfd.CFD, error) {
	opts = opts.withDefaults()
	arity := r.Schema().Arity()
	if r.Len() == 0 {
		return nil, nil
	}

	groupsOf := func(attrs []int) int {
		return opts.Cache.GetVia(r, attrs).NumGroups()
	}

	// minimal[A] holds the discovered minimal LHS sets for RHS attribute A.
	minimal := make(map[int][][]int)
	hasSubsetFD := func(x []int, a int) bool {
		for _, m := range minimal[a] {
			if isSubset(m, x) {
				return true
			}
		}
		return false
	}

	var out []*cfd.CFD
	for _, level := range latticeLevels(arity, opts.MaxLHS) {
		// Phase 1: materialize this level's partitions — a deeper probe
		// below refines one of them, and under parallel scheduling that
		// parent can be a sibling another worker owns.
		warmLevel(r, opts.Cache, level, opts.Workers)
		// Phase 2: the per-set probes are independent within the level
		// (minimal-FD pruning only consults strictly smaller LHS sets —
		// two same-size sets can never be subsets of each other), so fan
		// them out and reduce in lexicographic order.
		holds := mapLevel(level, opts.Workers, func(x []int) []int {
			gx := groupsOf(x)
			var as []int
			for a := 0; a < arity; a++ {
				if contains(x, a) || hasSubsetFD(x, a) {
					continue
				}
				xa := append(append([]int(nil), x...), a)
				sort.Ints(xa)
				if gx == groupsOf(xa) {
					as = append(as, a)
				}
			}
			return as
		})
		for i, x := range level {
			for _, a := range holds[i] {
				minimal[a] = append(minimal[a], append([]int(nil), x...))
				c, err := buildFD(r.Schema(), x, a)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
		}
	}
	return out, nil
}

// buildFD constructs the plain FD X → A as a CFD with one all-wild row.
func buildFD(schema *relation.Schema, x []int, a int) (*cfd.CFD, error) {
	lhs := make([]string, len(x))
	for i, idx := range x {
		lhs[i] = schema.Attr(idx).Name
	}
	name := fmt.Sprintf("fd_%s_%s", joinNames(lhs), schema.Attr(a).Name)
	return cfd.New(name, schema, lhs, []string{schema.Attr(a).Name}, nil)
}

// ConstantCFDs mines minimal constant CFDs (X = x̄ → A = 'a') holding on
// r with scope at least MinSupport, in the spirit of CFDMiner: the LHS
// pattern must be "free" — no generalization (dropping one attribute)
// already determines the same constant.
func ConstantCFDs(r *relation.Relation, opts Options) ([]*cfd.CFD, error) {
	opts = opts.withDefaults()
	arity := r.Schema().Arity()
	if r.Len() == 0 {
		return nil, nil
	}

	// discovered[g] for generalization pruning: key is
	// (sorted X, encoded x̄ values, A, encoded a).
	type ruleKey struct {
		attrs string
		vals  string
		rhs   int
		rhsV  string
	}
	emitted := map[ruleKey]bool{}
	generalizes := func(x []int, vals relation.Tuple, a int, av relation.Value) bool {
		// Does some emitted rule with X' ⊂ X, consistent values, same RHS
		// exist? We only need to check direct generalizations because
		// emission is level-wise (smaller X first).
		for drop := range x {
			sub := make([]int, 0, len(x)-1)
			var subVals relation.Tuple
			for i, idx := range x {
				if i == drop {
					continue
				}
				sub = append(sub, idx)
				subVals = append(subVals, vals[i])
			}
			k := ruleKey{encodeInts(sub), subVals.FullKey(), a, string(av.Encode(nil))}
			if emitted[k] {
				return true
			}
		}
		return false
	}

	// candidate is one minimal constant rule found for a set: X = vals
	// implies attribute a = av.
	type candidate struct {
		vals relation.Tuple
		a    int
		av   relation.Value
	}
	var out []*cfd.CFD
	for _, level := range latticeLevels(arity, opts.MaxLHS) {
		warmLevel(r, opts.Cache, level, opts.Workers)
		// Per-set mining is independent within a level: the
		// generalization pruning only consults emitted rules over
		// strictly smaller sets (a direct generalization drops one
		// attribute), and emitted is only written at the level barrier
		// below — so workers read a settled map.
		found := mapLevel(level, opts.Workers, func(x []int) []candidate {
			pli := opts.Cache.GetVia(r, x)
			type group struct {
				vals relation.Tuple
				tids []int
			}
			var groups []group
			// PLI groups arrive in sorted encoded-key order — exactly the
			// FullKey order the legacy path sorted into — so iteration is
			// already deterministic and reproducible.
			for gi := 0; gi < pli.NumGroups(); gi++ {
				tids := pli.Group(gi)
				if len(tids) >= opts.MinSupport {
					groups = append(groups, group{r.Tuple(tids[0]).Project(x), tids})
				}
			}
			var cands []candidate
			for _, g := range groups {
				hasNull := false
				for _, v := range g.vals {
					if v.IsNull() {
						hasNull = true
						break
					}
				}
				if hasNull {
					continue // constant patterns cannot express NULL
				}
				for a := 0; a < arity; a++ {
					if contains(x, a) {
						continue
					}
					av := r.Tuple(g.tids[0])[a]
					if av.IsNull() {
						continue
					}
					uniform := true
					for _, tid := range g.tids[1:] {
						if !r.Tuple(tid)[a].Identical(av) {
							uniform = false
							break
						}
					}
					if !uniform || generalizes(x, g.vals, a, av) {
						continue
					}
					cands = append(cands, candidate{g.vals, a, av})
				}
			}
			return cands
		})
		for i, x := range level {
			for _, cand := range found[i] {
				k := ruleKey{encodeInts(x), cand.vals.FullKey(), cand.a, string(cand.av.Encode(nil))}
				emitted[k] = true
				c, err := buildConstantCFD(r.Schema(), x, cand.vals, cand.a, cand.av)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
		}
	}
	return out, nil
}

func buildConstantCFD(schema *relation.Schema, x []int, vals relation.Tuple, a int, av relation.Value) (*cfd.CFD, error) {
	lhs := make([]string, len(x))
	row := make(pattern.Row, 0, len(x)+1)
	for i, idx := range x {
		lhs[i] = schema.Attr(idx).Name
		row = append(row, pattern.Const(vals[i]))
	}
	row = append(row, pattern.Const(av))
	name := fmt.Sprintf("ccfd_%s_%s", joinNames(lhs), schema.Attr(a).Name)
	return cfd.New(name, schema, lhs, []string{schema.Attr(a).Name}, pattern.Tableau{row})
}

// VariableCFDs discovers conditional (variable) CFDs in the CTANE style:
// for embedded FDs X → A that fail on the whole relation, it searches
// single-attribute conditions B = b (B ∈ X) under which the FD holds
// with support ≥ MinSupport. Plain FDs that hold globally are reported
// by FDs and skipped here.
func VariableCFDs(r *relation.Relation, opts Options) ([]*cfd.CFD, error) {
	opts = opts.withDefaults()
	arity := r.Schema().Arity()
	if r.Len() == 0 {
		return nil, nil
	}

	// rule is one conditional CFD found for a set: X → a holds on the
	// scopes described by rows (constants on one conditioning attribute).
	type rule struct {
		a    int
		rows []pattern.Row
	}
	var out []*cfd.CFD
	for _, level := range latticeLevels(arity, opts.MaxLHS) {
		if len(level) == 0 || len(level[0]) < 2 {
			continue // a condition needs one attr, the FD another
		}
		warmLevel(r, opts.Cache, level, opts.Workers)
		found := mapLevel(level, opts.Workers, func(x []int) []rule {
			pliX := opts.Cache.GetVia(r, x)
			var rules []rule
			for a := 0; a < arity; a++ {
				if contains(x, a) {
					continue
				}
				xa := append(append([]int(nil), x...), a)
				sort.Ints(xa)
				if pliX.NumGroups() == opts.Cache.GetVia(r, xa).NumGroups() {
					continue // holds globally: a plain FD, not a conditional one
				}
				// Try conditioning on each attribute of X.
				for _, b := range x {
					rows := conditionalRows(r, opts.Cache, pliX, x, a, b, opts.MinSupport)
					if len(rows) == 0 {
						continue
					}
					rules = append(rules, rule{a, rows})
				}
			}
			return rules
		})
		for i, x := range level {
			for _, ru := range found[i] {
				c, err := buildVariableCFD(r.Schema(), x, ru.a, ru.rows)
				if err != nil {
					return nil, err
				}
				out = append(out, c)
			}
		}
	}
	return out, nil
}

// conditionalRows finds the values b of attribute cond such that X → A
// holds on σ_{cond=b}(r) with at least minSupport tuples, returning the
// pattern rows (constant on cond, wildcards elsewhere). pliX is the
// cached partition of r by X; X-group membership inside each scope comes
// from PLI.GroupOf instead of re-encoding string keys per tuple.
func conditionalRows(r *relation.Relation, cache *relation.IndexCache, pliX *relation.PLI, x []int, a, cond, minSupport int) []pattern.Row {
	// Partition by cond, then test the FD within each part. PLI group
	// order is sorted encoded-key order, matching the legacy key sort.
	byCond := cache.GetVia(r, []int{cond})
	type candidate struct {
		val  relation.Value
		tids []int
	}
	var cands []candidate
	for g := 0; g < byCond.NumGroups(); g++ {
		tids := byCond.Group(g)
		if len(tids) >= minSupport {
			v := r.Tuple(tids[0])[cond]
			if !v.IsNull() {
				cands = append(cands, candidate{v, tids})
			}
		}
	}

	codesA := r.ColumnCodes(a)
	var rows []pattern.Row
	for _, cand := range cands {
		// Check X → A within the scope: every X-group of the scope must
		// agree on A. Codes decide the fast path; unequal codes (possibly
		// Identical across mixed kinds) and NaN fall back to the exact
		// value comparison against the group's first member, preserving
		// the legacy semantics.
		first := map[int32]int{} // X-group -> first scope member
		holds := true
		for _, tid := range cand.tids {
			g := pliX.GroupOf(tid)
			ft, ok := first[int32(g)]
			if !ok {
				first[int32(g)] = tid
				continue
			}
			if codesA[tid] == codesA[ft] && !r.Tuple(ft)[a].IsNaN() {
				continue
			}
			if !r.Tuple(ft)[a].Identical(r.Tuple(tid)[a]) {
				holds = false
				break
			}
		}
		if !holds {
			continue
		}
		// Reject trivial scopes: if every X-group in scope is a
		// singleton the FD holds vacuously; require at least one group
		// with 2+ members so the rule is supported by evidence.
		supported := false
		seen := map[int32]bool{}
		for _, tid := range cand.tids {
			g := int32(pliX.GroupOf(tid))
			if seen[g] {
				supported = true
				break
			}
			seen[g] = true
		}
		if !supported {
			continue
		}
		row := make(pattern.Row, 0, len(x)+1)
		for _, idx := range x {
			if idx == cond {
				row = append(row, pattern.Const(cand.val))
			} else {
				row = append(row, pattern.Wild())
			}
		}
		row = append(row, pattern.Wild())
		rows = append(rows, row)
	}
	return rows
}

func buildVariableCFD(schema *relation.Schema, x []int, a int, rows []pattern.Row) (*cfd.CFD, error) {
	lhs := make([]string, len(x))
	for i, idx := range x {
		lhs[i] = schema.Attr(idx).Name
	}
	name := fmt.Sprintf("vcfd_%s_%s", joinNames(lhs), schema.Attr(a).Name)
	return cfd.New(name, schema, lhs, []string{schema.Attr(a).Name}, pattern.Tableau(rows))
}

// Discover runs all three discovery passes and returns the union. The
// passes share one partition cache (Options.Cache, defaulted here), so
// the lattice partitions FDs builds are reused by the constant and
// variable passes.
func Discover(r *relation.Relation, opts Options) ([]*cfd.CFD, error) {
	opts = opts.withDefaults()
	fds, err := FDs(r, opts)
	if err != nil {
		return nil, err
	}
	consts, err := ConstantCFDs(r, opts)
	if err != nil {
		return nil, err
	}
	vars, err := VariableCFDs(r, opts)
	if err != nil {
		return nil, err
	}
	out := append(fds, consts...)
	return append(out, vars...), nil
}

// subsetsUpTo enumerates the non-empty subsets of {0..n-1} with size ≤ k,
// ordered by size then lexicographically (level-wise order).
func subsetsUpTo(n, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			out = append(out, append([]int(nil), cur...))
		}
		if len(cur) == k {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func isSubset(sub, super []int) bool {
	for _, s := range sub {
		if !contains(super, s) {
			return false
		}
	}
	return true
}

func encodeInts(xs []int) string {
	b := make([]byte, 0, len(xs)*3)
	for _, x := range xs {
		b = append(b, byte(x), ',')
	}
	return string(b)
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "_"
		}
		out += n
	}
	return out
}
