package discovery

import (
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/relation"
)

// mixedFD builds data where ZIP → STR holds exactly inside CC='44' but
// fails inside CC='01' (shared zips, different streets).
func mixedFD(t *testing.T) *relation.Relation {
	t.Helper()
	s := schema(t, "CC", "ZIP", "STR")
	r := relation.New(s)
	for i := 0; i < 20; i++ {
		z := []string{"Z1", "Z2"}[i%2]
		street := "uk-street-" + z
		r.MustInsert(strTuple("44", z, street))
	}
	for i := 0; i < 20; i++ {
		z := []string{"Z1", "Z2"}[i%2]
		street := []string{"us-a", "us-b", "us-c"}[i%3]
		r.MustInsert(strTuple("01", z, street))
	}
	return r
}

func TestGenerateTableauPicksCondition(t *testing.T) {
	r := mixedFD(t)
	c, stats, err := GenerateTableau(r, []string{"CC", "ZIP"}, "STR", TableauOptions{
		MinSupport:    0.1,
		MinConfidence: 1.0,
		MaxRows:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The all-wild row fails confidence (US part violates), so the
	// generator must pick the CC='44' condition (or finer rows inside
	// it). The first pick covers the UK half.
	if len(stats) == 0 {
		t.Fatal("no rows generated")
	}
	first := stats[0]
	if first.Confidence < 1.0 {
		t.Errorf("first row confidence = %f", first.Confidence)
	}
	if !first.Row[0].Matches(relation.String("44")) {
		t.Errorf("first row should condition on CC='44': %v", first.Row)
	}
	// The generated CFD must hold on its scope: detect violations.
	vs, err := cfd.DetectOne(r, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("generated tableau fires on its own data: %v", vs)
	}
}

func TestGenerateTableauGlobalFDGivesWildRow(t *testing.T) {
	// If the FD holds globally, the single all-wildcard row covers
	// everything and should be the only pick.
	s := schema(t, "A", "B")
	r := relation.New(s)
	for i := 0; i < 30; i++ {
		v := []string{"x", "y", "z"}[i%3]
		r.MustInsert(strTuple(v, "val-"+v))
	}
	c, stats, err := GenerateTableau(r, []string{"A"}, "B", TableauOptions{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("rows = %d, want 1", len(stats))
	}
	if !stats[0].Row[0].IsWild() {
		t.Errorf("expected all-wild row, got %v", stats[0].Row)
	}
	if stats[0].Support != 1.0 || stats[0].Confidence != 1.0 {
		t.Errorf("stats = %+v", stats[0])
	}
	if c.Rows() != 1 {
		t.Errorf("tableau rows = %d", c.Rows())
	}
}

func TestGenerateTableauConfidenceRelaxed(t *testing.T) {
	// With confidence < 1 the noisy global row becomes admissible.
	s := schema(t, "A", "B")
	r := relation.New(s)
	for i := 0; i < 95; i++ {
		r.MustInsert(strTuple("a", "good"))
	}
	for i := 0; i < 5; i++ {
		r.MustInsert(strTuple("a", "bad"))
	}
	if _, _, err := GenerateTableau(r, []string{"A"}, "B", TableauOptions{
		MinSupport: 0.5, MinConfidence: 1.0,
	}); err == nil {
		t.Error("exact confidence should find no row (the lone group is 95/100 pure)")
	}
	_, stats, err := GenerateTableau(r, []string{"A"}, "B", TableauOptions{
		MinSupport: 0.5, MinConfidence: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Confidence < 0.9 || stats[0].Confidence >= 1.0 {
		t.Errorf("confidence = %f, want in [0.9, 1)", stats[0].Confidence)
	}
}

func TestGenerateTableauSupportThreshold(t *testing.T) {
	r := mixedFD(t)
	// Support 0.8 excludes every conditional row (each CC covers 0.5):
	// only the all-wild row qualifies on support, but it fails
	// confidence → error.
	if _, _, err := GenerateTableau(r, []string{"CC", "ZIP"}, "STR", TableauOptions{
		MinSupport: 0.8, MinConfidence: 1.0,
	}); err == nil {
		t.Error("no row should satisfy support 0.8 at confidence 1.0")
	}
}

func TestGenerateTableauErrors(t *testing.T) {
	s := schema(t, "A", "B")
	r := relation.New(s)
	if _, _, err := GenerateTableau(r, []string{"A"}, "B", TableauOptions{}); err == nil {
		t.Error("empty relation should fail")
	}
	r.MustInsert(strTuple("a", "b"))
	if _, _, err := GenerateTableau(r, []string{"NOPE"}, "B", TableauOptions{}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, _, err := GenerateTableau(r, []string{"A"}, "NOPE", TableauOptions{}); err == nil {
		t.Error("unknown RHS should fail")
	}
}
