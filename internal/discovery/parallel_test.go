package discovery

import (
	"fmt"
	"math/rand"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/relation"
)

// randomRelation builds a small-domain random relation so that lattice
// levels carry many sets with non-trivial partitions.
func randomRelation(t *testing.T, seed int64, n, arity, domain int) *relation.Relation {
	t.Helper()
	names := make([]string, arity)
	for i := range names {
		names[i] = fmt.Sprintf("A%d", i)
	}
	s := schema(t, names...)
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(s)
	for i := 0; i < n; i++ {
		tp := make(relation.Tuple, arity)
		for j := range tp {
			tp[j] = relation.String(fmt.Sprintf("v%d", rng.Intn(domain)))
		}
		// Plant some FD structure: the last column copies the first.
		tp[arity-1] = tp[0]
		r.MustInsert(tp)
	}
	return r
}

func renderCFDs(cfds []*cfd.CFD) []string {
	out := make([]string, len(cfds))
	for i, c := range cfds {
		out[i] = c.String()
	}
	return out
}

// TestParallelDiscoveryMatchesSerial is the acceptance property of the
// level-parallel lattice walk: for every pass (FDs, constant CFDs,
// variable CFDs, and the combined Discover), fanning the per-set
// refinements over many workers returns the same rules in the same
// order as the serial walk — byte-identical rendered output.
func TestParallelDiscoveryMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := randomRelation(t, seed, 300+int(seed)*50, 5, 4)
		for _, workers := range []int{2, 4, 8} {
			serialOpts := Options{MinSupport: 3, MaxLHS: 3, Workers: 1}
			parOpts := Options{MinSupport: 3, MaxLHS: 3, Workers: workers}

			sf, err := FDs(r, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			pf, err := FDs(r, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(renderCFDs(sf)) != fmt.Sprint(renderCFDs(pf)) {
				t.Fatalf("seed %d workers %d: parallel FDs diverge\nserial:   %v\nparallel: %v",
					seed, workers, renderCFDs(sf), renderCFDs(pf))
			}

			sc, err := ConstantCFDs(r, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			pc, err := ConstantCFDs(r, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(renderCFDs(sc)) != fmt.Sprint(renderCFDs(pc)) {
				t.Fatalf("seed %d workers %d: parallel ConstantCFDs diverge", seed, workers)
			}

			sv, err := VariableCFDs(r, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			pv, err := VariableCFDs(r, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(renderCFDs(sv)) != fmt.Sprint(renderCFDs(pv)) {
				t.Fatalf("seed %d workers %d: parallel VariableCFDs diverge", seed, workers)
			}

			sd, err := Discover(r, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			pd, err := Discover(r, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if len(sd) == 0 {
				t.Fatalf("seed %d: trivial fixture, discovery found nothing", seed)
			}
			if fmt.Sprint(renderCFDs(sd)) != fmt.Sprint(renderCFDs(pd)) {
				t.Fatalf("seed %d workers %d: parallel Discover diverges", seed, workers)
			}
		}
	}
}

// TestParallelWalkBoundsBuilds asserts the parallel walk keeps the
// partition-intersection economics: from-scratch builds stay bounded by
// the arity (every deeper partition refines a warmed parent), no matter
// the worker count — the level warm-up phase guarantees it even when a
// probe's parent belongs to a lexicographic sibling.
func TestParallelWalkBoundsBuilds(t *testing.T) {
	r := randomRelation(t, 11, 500, 5, 4)
	for _, workers := range []int{1, 8} {
		cache := relation.NewIndexCache()
		if _, err := FDs(r, Options{MaxLHS: 3, Workers: workers, Cache: cache}); err != nil {
			t.Fatal(err)
		}
		if s := cache.Stats(); s.Misses > 5 {
			t.Fatalf("workers=%d: %d from-scratch builds, want at most arity 5 (%+v)", workers, s.Misses, s)
		}
	}
}
