package pattern

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"semandaq/internal/relation"
)

func TestValueMatching(t *testing.T) {
	w := Wild()
	c := ConstStr("44")
	if !w.Matches(relation.String("anything")) || !w.Matches(relation.Null()) {
		t.Error("wildcard must match everything")
	}
	if !c.Matches(relation.String("44")) {
		t.Error("constant must match identical value")
	}
	if c.Matches(relation.String("01")) {
		t.Error("constant must not match different value")
	}
	if c.Matches(relation.Null()) {
		t.Error("constant must not match NULL")
	}
	if c.Matches(relation.Int(44)) {
		t.Error("string constant must not match int value")
	}
}

func TestSubsumption(t *testing.T) {
	w, a, b := Wild(), ConstStr("a"), ConstStr("b")
	if !w.Subsumes(a) || !w.Subsumes(w) || !a.Subsumes(a) {
		t.Error("subsumption reflexivity/wildcard cases failed")
	}
	if a.Subsumes(w) {
		t.Error("constant must not subsume wildcard")
	}
	if a.Subsumes(b) {
		t.Error("distinct constants must not subsume each other")
	}
}

func randomPattern(r *rand.Rand) Value {
	if r.Intn(3) == 0 {
		return Wild()
	}
	return ConstStr(string(rune('a' + r.Intn(4))))
}

type patBox struct{ P Value }

func (patBox) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(patBox{P: randomPattern(r)})
}

func TestSubsumptionIsPartialOrder(t *testing.T) {
	// Reflexive, antisymmetric (up to Equal), transitive.
	refl := func(a patBox) bool { return a.P.Subsumes(a.P) }
	anti := func(a, b patBox) bool {
		if a.P.Subsumes(b.P) && b.P.Subsumes(a.P) {
			return a.P.Equal(b.P)
		}
		return true
	}
	trans := func(a, b, c patBox) bool {
		if a.P.Subsumes(b.P) && b.P.Subsumes(c.P) {
			return a.P.Subsumes(c.P)
		}
		return true
	}
	for name, prop := range map[string]any{"refl": refl, "anti": anti, "trans": trans} {
		if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSubsumptionSemantics(t *testing.T) {
	// Property: p.Subsumes(q) implies every value matched by q is matched
	// by p (checked over a sample domain).
	domain := []relation.Value{
		relation.String("a"), relation.String("b"), relation.String("c"),
		relation.String("d"), relation.Null(),
	}
	prop := func(a, b patBox) bool {
		if !a.P.Subsumes(b.P) {
			return true
		}
		for _, v := range domain {
			if b.P.Matches(v) && !a.P.Matches(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestRowMatches(t *testing.T) {
	// Row over attrs {0, 2} of a 3-tuple.
	row := Row{ConstStr("44"), Wild()}
	tup := relation.Tuple{relation.String("44"), relation.String("x"), relation.String("y")}
	if !row.Matches(tup, []int{0, 2}) {
		t.Error("row should match on (44, _)")
	}
	if row.Matches(tup, []int{1, 2}) {
		t.Error("row should not match when first attr is x")
	}
}

func TestRowPredicates(t *testing.T) {
	if !(Row{Wild(), Wild()}).AllWild() {
		t.Error("AllWild failed")
	}
	if (Row{Wild(), ConstStr("a")}).AllWild() {
		t.Error("AllWild false positive")
	}
	if !(Row{ConstStr("a"), ConstStr("b")}).AllConst() {
		t.Error("AllConst failed")
	}
	if (Row{ConstStr("a"), Wild()}).AllConst() {
		t.Error("AllConst false positive")
	}
}

func TestTableauValidateAndReduce(t *testing.T) {
	tb := Tableau{
		{Wild(), Wild()},
		{ConstStr("a"), Wild()},        // subsumed by row 0
		{ConstStr("a"), ConstStr("b")}, // subsumed by rows 0 and 1
	}
	if err := tb.Validate(2); err != nil {
		t.Fatal(err)
	}
	if err := tb.Validate(3); err == nil {
		t.Error("Validate should fail for wrong width")
	}
	red := tb.Reduce()
	if len(red) != 1 || !red[0].Equal(Row{Wild(), Wild()}) {
		t.Errorf("Reduce = %v, want single all-wild row", red)
	}
}

func TestTableauReduceKeepsIncomparable(t *testing.T) {
	tb := Tableau{
		{ConstStr("a"), Wild()},
		{Wild(), ConstStr("b")},
	}
	red := tb.Reduce()
	if len(red) != 2 {
		t.Errorf("Reduce removed incomparable rows: %v", red)
	}
}

func TestTableauReduceDuplicates(t *testing.T) {
	tb := Tableau{
		{ConstStr("a")},
		{ConstStr("a")},
	}
	if red := tb.Reduce(); len(red) != 1 {
		t.Errorf("Reduce kept duplicate rows: %v", red)
	}
}

func TestReduceSemanticsPreserved(t *testing.T) {
	// Property: reduction preserves the matched tuple set.
	rng := rand.New(rand.NewSource(11))
	domainTuple := func() relation.Tuple {
		return relation.Tuple{
			relation.String(string(rune('a' + rng.Intn(4)))),
			relation.String(string(rune('a' + rng.Intn(4)))),
		}
	}
	for trial := 0; trial < 200; trial++ {
		var tb Tableau
		for i := 0; i < 1+rng.Intn(5); i++ {
			tb = append(tb, Row{randomPattern(rng), randomPattern(rng)})
		}
		red := tb.Reduce()
		for probe := 0; probe < 20; probe++ {
			tup := domainTuple()
			before := len(tb.MatchingRows(tup, []int{0, 1})) > 0
			after := len(red.MatchingRows(tup, []int{0, 1})) > 0
			if before != after {
				t.Fatalf("Reduce changed semantics for %v: tableau %v -> %v", tup, tb, red)
			}
		}
	}
}

func TestParseValue(t *testing.T) {
	p, err := ParseValue("_", relation.KindString)
	if err != nil || !p.IsWild() {
		t.Errorf("ParseValue(_) = %v, %v", p, err)
	}
	p, err = ParseValue("'44'", relation.KindString)
	if err != nil || !p.Matches(relation.String("44")) {
		t.Errorf("ParseValue('44') = %v, %v", p, err)
	}
	p, err = ParseValue("42", relation.KindInt)
	if err != nil || !p.Matches(relation.Int(42)) {
		t.Errorf("ParseValue(42) = %v, %v", p, err)
	}
	if _, err = ParseValue("abc", relation.KindInt); err == nil {
		t.Error("ParseValue(abc as int) should fail")
	}
}

func TestPatternString(t *testing.T) {
	if Wild().String() != "_" {
		t.Error("wildcard should render as _")
	}
	if ConstStr("x").String() != "'x'" {
		t.Errorf("ConstStr render = %s", ConstStr("x").String())
	}
	if Const(relation.Int(5)).String() != "5" {
		t.Errorf("int const render = %s", Const(relation.Int(5)).String())
	}
	row := Row{Wild(), ConstStr("a")}
	if row.String() != "(_, 'a')" {
		t.Errorf("row render = %s", row.String())
	}
}
