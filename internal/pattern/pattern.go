// Package pattern implements the pattern tableaux that distinguish
// conditional dependencies (CFDs, CINDs, eCFDs) from their classical
// counterparts.
//
// A pattern value is either a constant, which matches exactly that data
// value, or the wildcard "_", which matches any value. Pattern tuples
// (rows of constants and wildcards) assembled into tableaux specify the
// part of a relation on which an embedded dependency must hold, following
// Fan, Geerts, Jia, Kementsietsidis (TODS 2008).
package pattern

import (
	"fmt"
	"strings"

	"semandaq/internal/relation"
)

// Value is a pattern value: a constant or the wildcard.
// The zero Value is the wildcard.
type Value struct {
	isConst bool
	c       relation.Value
}

// Wild returns the wildcard pattern "_".
func Wild() Value { return Value{} }

// Const returns the constant pattern matching exactly v.
func Const(v relation.Value) Value { return Value{isConst: true, c: v} }

// ConstStr returns the constant pattern for a string value; shorthand for
// the common all-string schemas in the paper.
func ConstStr(s string) Value { return Const(relation.String(s)) }

// IsWild reports whether p is the wildcard.
func (p Value) IsWild() bool { return !p.isConst }

// IsConst reports whether p is a constant.
func (p Value) IsConst() bool { return p.isConst }

// Constant returns the constant matched by p; only meaningful when
// IsConst.
func (p Value) Constant() relation.Value { return p.c }

// Matches reports whether data value v matches pattern p. The wildcard
// matches everything including NULL; a constant matches only an identical
// value (NULL never matches a constant).
func (p Value) Matches(v relation.Value) bool {
	if !p.isConst {
		return true
	}
	return p.c.Identical(v)
}

// Subsumes reports whether p is at least as general as q: every data
// value matched by q is matched by p.
func (p Value) Subsumes(q Value) bool {
	if !p.isConst {
		return true
	}
	return q.isConst && p.c.Identical(q.c)
}

// Equal reports pattern identity.
func (p Value) Equal(q Value) bool {
	if p.isConst != q.isConst {
		return false
	}
	return !p.isConst || p.c.Identical(q.c)
}

// String renders the pattern: "_" for the wildcard, the constant
// otherwise (strings single-quoted).
func (p Value) String() string {
	if !p.isConst {
		return "_"
	}
	if p.c.Kind() == relation.KindString {
		return "'" + p.c.Str() + "'"
	}
	return p.c.String()
}

// Row is a pattern tuple over a fixed attribute list.
type Row []Value

// Matches reports whether data tuple t (restricted to positions attrs)
// matches the row: attrs[i]'s value must match row[i].
func (r Row) Matches(t relation.Tuple, attrs []int) bool {
	for i, p := range r {
		if !p.Matches(t[attrs[i]]) {
			return false
		}
	}
	return true
}

// Subsumes reports whether r is at least as general as q component-wise.
func (r Row) Subsumes(q Row) bool {
	if len(r) != len(q) {
		return false
	}
	for i := range r {
		if !r[i].Subsumes(q[i]) {
			return false
		}
	}
	return true
}

// Equal reports component-wise pattern identity.
func (r Row) Equal(q Row) bool {
	if len(r) != len(q) {
		return false
	}
	for i := range r {
		if !r[i].Equal(q[i]) {
			return false
		}
	}
	return true
}

// AllWild reports whether every pattern in the row is the wildcard.
func (r Row) AllWild() bool {
	for _, p := range r {
		if p.IsConst() {
			return false
		}
	}
	return true
}

// AllConst reports whether every pattern in the row is a constant.
func (r Row) AllConst() bool {
	for _, p := range r {
		if p.IsWild() {
			return false
		}
	}
	return true
}

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as (p1, p2, ...).
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, p := range r {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Tableau is an ordered list of pattern rows, all of the same width.
type Tableau []Row

// Validate checks that every row has the expected width.
func (tb Tableau) Validate(width int) error {
	for i, r := range tb {
		if len(r) != width {
			return fmt.Errorf("pattern: tableau row %d has width %d, want %d", i, len(r), width)
		}
	}
	return nil
}

// MatchingRows returns the indexes of rows matched by tuple t on attrs.
func (tb Tableau) MatchingRows(t relation.Tuple, attrs []int) []int {
	var out []int
	for i, r := range tb {
		if r.Matches(t, attrs) {
			out = append(out, i)
		}
	}
	return out
}

// Reduce removes rows subsumed by other rows (keeping the earlier, more
// general row), returning a new tableau. When two rows are identical the
// first is kept.
func (tb Tableau) Reduce() Tableau {
	keep := make([]bool, len(tb))
	for i := range keep {
		keep[i] = true
	}
	for i := range tb {
		if !keep[i] {
			continue
		}
		for j := range tb {
			if i == j || !keep[j] {
				continue
			}
			if tb[i].Subsumes(tb[j]) && !(tb[j].Subsumes(tb[i]) && j < i) {
				keep[j] = false
			}
		}
	}
	var out Tableau
	for i, r := range tb {
		if keep[i] {
			out = append(out, r.Clone())
		}
	}
	return out
}

// Clone returns a deep copy of the tableau.
func (tb Tableau) Clone() Tableau {
	out := make(Tableau, len(tb))
	for i, r := range tb {
		out[i] = r.Clone()
	}
	return out
}

// ParseValue parses the textual form of a single pattern value: "_" is
// the wildcard; 'quoted' or bare text is a constant of the given kind.
func ParseValue(s string, kind relation.Kind) (Value, error) {
	s = strings.TrimSpace(s)
	if s == "_" {
		return Wild(), nil
	}
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return ConstStr(s[1 : len(s)-1]), nil
	}
	v, err := relation.ParseValue(s, kind)
	if err != nil {
		return Wild(), err
	}
	if v.IsNull() {
		return Wild(), fmt.Errorf("pattern: empty constant in pattern value %q", s)
	}
	return Const(v), nil
}
